// Package core implements the paper's contribution: the LowFive transport
// layer, structured exactly as the three VOL classes of §III-A:
//
//   - BaseVOL passes every operation through to native container-file I/O.
//   - MetadataVOL (deriving from base) replicates the user's HDF5 hierarchy
//     in an in-memory metadata tree (Figure 1), holding deep copies or
//     shallow references of written data, per-dataset configurable, and can
//     combine in-memory operation with file passthrough per file pattern.
//   - DistMetadataVOL (deriving from metadata) adds the distributed
//     producer/consumer protocol: index–serve–query data redistribution
//     over MPI intercommunicators (Algorithms 1–3).
package core

import (
	"fmt"
	"sync"

	"lowfive/h5"
	"lowfive/internal/grid"
)

// Ownership says whether the metadata tree owns a dataset's bytes (deep
// copy) or only references the user's buffer (shallow / zero-copy).
type Ownership uint8

const (
	// OwnDeep snapshots written data into the tree at write time; the user
	// may immediately reuse their buffer.
	OwnDeep Ownership = iota
	// OwnShallow stores a reference to the user's buffer; the user must not
	// modify it until the data has been consumed (file closed and served).
	OwnShallow
)

// Triple is one write operation recorded in the tree: the data space it
// covers in the file, the memory space describing the (possibly strided)
// layout of Data, and the bytes themselves. The paper's producers record
// one triple per H5Dwrite.
type Triple struct {
	// FileSpace is the region of the dataset this write covers.
	FileSpace *h5.Dataspace
	// MemSpace is the layout of Data; nil means packed in FileSpace
	// selection order.
	MemSpace *h5.Dataspace
	// Data holds the bytes (owned copy or user reference, per Owned).
	Data []byte
	// Owned reports whether Data is the tree's own copy.
	Owned bool

	packOnce sync.Once
	packed   []byte // lazily packed selection-order bytes for shallow triples
}

// PackedData returns the triple's bytes packed in FileSpace selection
// order, gathering (and caching) from a shallow user buffer on first use —
// this is the moment a zero-copy write finally pays its serialization cost,
// and only if the data is actually consumed. The cache fill is a sync.Once:
// with admission control, several data streams can pack the same triple
// concurrently.
func (t *Triple) PackedData(elemSize int) []byte {
	if t.MemSpace == nil {
		return t.Data
	}
	t.packOnce.Do(func() {
		t.packed = h5.GatherSelected(nil, t.Data, t.MemSpace, elemSize)
	})
	return t.packed
}

// Node is one object of the in-memory metadata hierarchy (Figure 1): a
// group or a dataset, with attributes, children and parent links.
type Node struct {
	Name   string
	Kind   h5.ObjectKind
	Parent *Node

	children []*Node
	childIdx map[string]*Node

	attrNames []string
	attrs     map[string]*Attribute

	// Dataset fields.
	Type      *h5.Datatype
	Space     *h5.Dataspace
	Triples   []*Triple
	Ownership Ownership
}

// Attribute is a small named, typed value attached to any object.
type Attribute struct {
	Name  string
	Type  *h5.Datatype
	Space *h5.Dataspace
	Data  []byte
}

// NewGroupNode creates a group node.
func NewGroupNode(name string) *Node {
	return &Node{Name: name, Kind: h5.KindGroup, childIdx: map[string]*Node{}, attrs: map[string]*Attribute{}}
}

// NewDatasetNode creates a dataset node.
func NewDatasetNode(name string, dt *h5.Datatype, space *h5.Dataspace) *Node {
	return &Node{
		Name: name, Kind: h5.KindDataset, Type: dt, Space: space,
		childIdx: map[string]*Node{}, attrs: map[string]*Attribute{},
	}
}

// AddChild links a child node, rejecting duplicates.
func (n *Node) AddChild(c *Node) error {
	if n.Kind != h5.KindGroup {
		return fmt.Errorf("lowfive: %q is not a group", n.Name)
	}
	if _, dup := n.childIdx[c.Name]; dup {
		return fmt.Errorf("lowfive: %q already exists in %q", c.Name, n.Name)
	}
	c.Parent = n
	n.children = append(n.children, c)
	n.childIdx[c.Name] = c
	return nil
}

// Child returns the named direct child.
func (n *Node) Child(name string) (*Node, bool) {
	c, ok := n.childIdx[name]
	return c, ok
}

// RemoveChild unlinks the named direct child (group or dataset), releasing
// its subtree.
func (n *Node) RemoveChild(name string) error {
	c, ok := n.childIdx[name]
	if !ok {
		return fmt.Errorf("lowfive: %q not found under %q", name, n.Path())
	}
	delete(n.childIdx, name)
	for i, k := range n.children {
		if k == c {
			n.children = append(n.children[:i], n.children[i+1:]...)
			break
		}
	}
	c.Parent = nil
	return nil
}

// Children lists direct children in creation order.
func (n *Node) Children() []*Node { return n.children }

// Path returns the slash-separated path from the root (the file node).
func (n *Node) Path() string {
	if n.Parent == nil {
		return "/"
	}
	p := n.Parent.Path()
	if p == "/" {
		return "/" + n.Name
	}
	return p + "/" + n.Name
}

// SetAttribute creates or replaces an attribute.
func (n *Node) SetAttribute(a *Attribute) {
	if _, exists := n.attrs[a.Name]; !exists {
		n.attrNames = append(n.attrNames, a.Name)
	}
	n.attrs[a.Name] = a
}

// Attribute returns the named attribute.
func (n *Node) Attribute(name string) (*Attribute, bool) {
	a, ok := n.attrs[name]
	return a, ok
}

// AttributeNames lists attributes in creation order.
func (n *Node) AttributeNames() []string { return append([]string(nil), n.attrNames...) }

// RecordWrite appends a write triple to a dataset node, honoring the node's
// ownership mode: deep copies gather into a packed owned buffer
// immediately; shallow keeps the user's buffer and spaces.
func (n *Node) RecordWrite(memSpace, fileSpace *h5.Dataspace, data []byte) error {
	if n.Kind != h5.KindDataset {
		return fmt.Errorf("lowfive: write to non-dataset %q", n.Name)
	}
	if fileSpace == nil {
		fileSpace = n.Space.Clone().SelectAll()
	}
	es := n.Type.Size
	switch n.Ownership {
	case OwnDeep:
		var packed []byte
		if memSpace == nil {
			packed = append([]byte(nil), data[:fileSpace.NumSelected()*int64(es)]...)
		} else {
			packed = h5.GatherSelected(make([]byte, 0, fileSpace.NumSelected()*int64(es)), data, memSpace, es)
		}
		n.Triples = append(n.Triples, &Triple{FileSpace: fileSpace.Clone(), Data: packed, Owned: true})
	case OwnShallow:
		n.Triples = append(n.Triples, &Triple{
			FileSpace: fileSpace.Clone(),
			MemSpace:  cloneOrNil(memSpace),
			Data:      data,
		})
	default:
		return fmt.Errorf("lowfive: unknown ownership %d", n.Ownership)
	}
	return nil
}

func cloneOrNil(s *h5.Dataspace) *h5.Dataspace {
	if s == nil {
		return nil
	}
	return s.Clone()
}

// ReadPacked assembles the fileSel-selected region of the dataset from its
// triples, packed in fileSel selection order. Later triples overwrite
// earlier ones where they overlap; unwritten elements read as zero (the
// HDF5 default fill value).
func (n *Node) ReadPacked(fileSel *h5.Dataspace) ([]byte, error) {
	if n.Kind != h5.KindDataset {
		return nil, fmt.Errorf("lowfive: read from non-dataset %q", n.Name)
	}
	es := int64(n.Type.Size)
	if fileSel == nil {
		fileSel = n.Space.Clone().SelectAll()
	}
	dst := make([]byte, fileSel.NumSelected()*es)
	reqBase := int64(0)
	for _, rb := range fileSel.SelectionBoxes() {
		for _, tr := range n.Triples {
			packed := tr.PackedData(int(es))
			triBase := int64(0)
			for _, tb := range tr.FileSpace.SelectionBoxes() {
				region := tb.Intersect(rb)
				if !region.IsEmpty() {
					grid.CopyRegion(dst[reqBase*es:], rb, packed[triBase*es:], tb, region, int(es))
				}
				triBase += tb.NumPoints()
			}
		}
		reqBase += rb.NumPoints()
	}
	return dst, nil
}

// ExtractRegions intersects the dataset's triples with a query selection and
// returns one (box, packed bytes) piece per non-empty intersection — exactly
// what a producer rank sends in answer to a consumer's data query (Alg. 2
// lines 9–14). Pieces from later triples follow earlier ones, so a consumer
// applying them in order preserves overwrite semantics.
func (n *Node) ExtractRegions(query *h5.Dataspace) ([]Piece, error) {
	if n.Kind != h5.KindDataset {
		return nil, fmt.Errorf("lowfive: extract from non-dataset %q", n.Name)
	}
	es := int64(n.Type.Size)
	var out []Piece
	for _, tr := range n.Triples {
		var packed []byte // fetched lazily: only if some region intersects
		triBase := int64(0)
		for _, tb := range tr.FileSpace.SelectionBoxes() {
			for _, qb := range query.SelectionBoxes() {
				region := tb.Intersect(qb)
				if region.IsEmpty() {
					continue
				}
				if packed == nil {
					packed = tr.PackedData(int(es))
				}
				data := make([]byte, 0, region.NumPoints()*es)
				data = grid.GatherRegion(data, packed[triBase*es:], tb, region, int(es))
				out = append(out, Piece{Box: region, Data: data})
			}
			triBase += tb.NumPoints()
		}
	}
	return out, nil
}

// Piece is a rectangular fragment of a dataset: its location in the global
// extent and its bytes in row-major order.
type Piece struct {
	Box  grid.Box
	Data []byte
}

// EncodeRegions serializes the query intersection directly into an encoder
// as a piece count followed by (box, bytes) pairs — the single-copy serve
// path: bytes go straight from the stored triples into the outgoing
// message buffer.
func (n *Node) EncodeRegions(e *h5.Encoder, query *h5.Dataspace) error {
	if n.Kind != h5.KindDataset {
		return fmt.Errorf("lowfive: extract from non-dataset %q", n.Name)
	}
	es := int64(n.Type.Size)
	qBoxes := query.SelectionBoxes()
	// Pass 1: count pieces and total bytes to presize the buffer.
	count := 0
	total := int64(0)
	for _, tr := range n.Triples {
		for _, tb := range tr.FileSpace.SelectionBoxes() {
			for _, qb := range qBoxes {
				region := tb.Intersect(qb)
				if !region.IsEmpty() {
					count++
					total += int64(8+16*region.Dim()+8) + region.NumPoints()*es
				}
			}
		}
	}
	if need := len(e.Buf) + 8 + int(total); cap(e.Buf) < need {
		grown := make([]byte, len(e.Buf), need)
		copy(grown, e.Buf)
		e.Buf = grown
	}
	e.PutI64(int64(count))
	// Pass 2: emit each piece, gathering bytes directly into the buffer.
	for _, tr := range n.Triples {
		var packed []byte
		triBase := int64(0)
		for _, tb := range tr.FileSpace.SelectionBoxes() {
			for _, qb := range qBoxes {
				region := tb.Intersect(qb)
				if region.IsEmpty() {
					continue
				}
				if packed == nil {
					packed = tr.PackedData(int(es))
				}
				encodeBox(e, region)
				e.PutI64(region.NumPoints() * es) // length prefix of the bytes
				e.Buf = grid.GatherRegion(e.Buf, packed[triBase*es:], tb, region, int(es))
			}
			triBase += tb.NumPoints()
		}
	}
	return nil
}

// WrittenBoxes returns the bounding boxes of every triple's file space —
// the "local data spaces written by the individual HDF5 write operations"
// that the index step advertises (Alg. 1 line 5–6).
func (n *Node) WrittenBoxes() []grid.Box {
	var out []grid.Box
	for _, tr := range n.Triples {
		b := tr.FileSpace.Bounds()
		if !b.IsEmpty() {
			out = append(out, b)
		}
	}
	return out
}

// FileNode is the root of one file's metadata hierarchy.
type FileNode struct {
	*Node
	FileName string
}

// NewFileNode creates a file root.
func NewFileNode(name string) *FileNode {
	return &FileNode{Node: NewGroupNode("/"), FileName: name}
}

// Resolve walks a slash-separated path from this node.
func (n *Node) Resolve(path string) (*Node, error) {
	cur := n
	for _, seg := range splitSegs(path) {
		c, ok := cur.Child(seg)
		if !ok {
			return nil, fmt.Errorf("lowfive: %q not found under %q", seg, cur.Path())
		}
		cur = c
	}
	return cur, nil
}

func splitSegs(path string) []string {
	var segs []string
	cur := ""
	for _, r := range path {
		if r == '/' {
			if cur != "" {
				segs = append(segs, cur)
				cur = ""
			}
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		segs = append(segs, cur)
	}
	return segs
}
