package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"lowfive/h5"
	"lowfive/internal/core"
	"lowfive/internal/grid"
	"lowfive/mpi"
)

// distFapl builds a one-per-process distributed VOL wired to the named
// peer task, as a long-lived application would.
func distFapl(p *mpi.Proc, peer string) *h5.FileAccessProps {
	vol := core.NewDistMetadataVOL(p.Task, nil)
	vol.SetIntercomm("*", p.Intercomm(peer))
	return h5.NewFileAccessProps(vol)
}

// produceGrid writes a dims-shaped uint64 dataset row-decomposed over the
// producer task; every element's value is its global linear index, so any
// consumer can validate redistribution.
func produceGrid(t *testing.T, p *mpi.Proc, fapl *h5.FileAccessProps, file string, dims []int64) {
	t.Helper()
	f, err := h5.CreateFile(file, fapl)
	if err != nil {
		t.Error(err)
		return
	}
	g, err := f.CreateGroup("group1")
	if err != nil {
		t.Error(err)
		return
	}
	ds, err := g.CreateDataset("grid", h5.U64, h5.NewSimple(dims...))
	if err != nil {
		t.Error(err)
		return
	}
	// Row-wise decomposition over the first dimension.
	n := int64(p.Task.Size())
	r := int64(p.Task.Rank())
	r0 := r * dims[0] / n
	r1 := (r+1)*dims[0]/n - 1
	if r1 >= r0 {
		start := make([]int64, len(dims))
		count := append([]int64(nil), dims...)
		start[0] = r0
		count[0] = r1 - r0 + 1
		sel := h5.NewSimple(dims...)
		if err := sel.SelectHyperslab(h5.SelectSet, start, count); err != nil {
			t.Error(err)
			return
		}
		rowElems := int64(1)
		for _, d := range dims[1:] {
			rowElems *= d
		}
		vals := make([]uint64, (r1-r0+1)*rowElems)
		for i := range vals {
			vals[i] = uint64(r0*rowElems + int64(i))
		}
		if err := ds.Write(nil, sel, h5.Bytes(vals)); err != nil {
			t.Error(err)
			return
		}
	}
	if err := ds.Close(); err != nil {
		t.Error(err)
	}
	if err := g.Close(); err != nil {
		t.Error(err)
	}
	if err := f.Close(); err != nil { // indexes and serves
		t.Error(err)
	}
}

// consumeGridColumns opens the file and reads a column-wise decomposition,
// validating every element.
func consumeGridColumns(t *testing.T, p *mpi.Proc, fapl *h5.FileAccessProps, file string, dims []int64) {
	t.Helper()
	f, err := h5.OpenFile(file, fapl)
	if err != nil {
		t.Error(err)
		return
	}
	ds, err := f.OpenDataset("group1/grid")
	if err != nil {
		t.Error(err)
		f.Close()
		return
	}
	gotDims := ds.Dataspace().Dims()
	for i := range dims {
		if gotDims[i] != dims[i] {
			t.Errorf("remote dims %v want %v", gotDims, dims)
		}
	}
	// Column-wise decomposition over the last dimension.
	m := int64(p.Task.Size())
	r := int64(p.Task.Rank())
	last := len(dims) - 1
	c0 := r * dims[last] / m
	c1 := (r+1)*dims[last]/m - 1
	if c1 >= c0 {
		start := make([]int64, len(dims))
		count := append([]int64(nil), dims...)
		start[last] = c0
		count[last] = c1 - c0 + 1
		sel := h5.NewSimple(dims...)
		if err := sel.SelectHyperslab(h5.SelectSet, start, count); err != nil {
			t.Error(err)
			return
		}
		out := make([]uint64, sel.NumSelected())
		if err := ds.Read(nil, sel, h5.Bytes(out)); err != nil {
			t.Error(err)
			return
		}
		// Validate: iterate the selection's global positions.
		i := 0
		width := count[last]
		var total int64 = 1
		for _, d := range count {
			total *= d
		}
		for idx := int64(0); idx < total; idx++ {
			// Convert selection-local idx to global coords.
			rem := idx
			global := int64(0)
			for d := len(dims) - 1; d >= 0; d-- {
				var cd int64
				if d == last {
					cd = rem%width + c0
				} else {
					cd = rem % count[d]
				}
				rem /= count[d]
				mult := int64(1)
				for k := d + 1; k < len(dims); k++ {
					mult *= dims[k]
				}
				global += cd * mult
			}
			if out[i] != uint64(global) {
				t.Errorf("rank %d: element %d = %d want %d", r, i, out[i], global)
				break
			}
			i++
		}
	}
	if err := ds.Close(); err != nil {
		t.Error(err)
	}
	if err := f.Close(); err != nil { // sends done
		t.Error(err)
	}
}

func TestDistRedistribution2D(t *testing.T) {
	// 3 producers row-wise -> 2 consumers column-wise (the Figure 3 shape).
	dims := []int64{6, 8}
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "producer", Procs: 3, Main: func(p *mpi.Proc) {
			produceGrid(t, p, distFapl(p, "consumer"), "step.h5", dims)
		}},
		{Name: "consumer", Procs: 2, Main: func(p *mpi.Proc) {
			consumeGridColumns(t, p, distFapl(p, "producer"), "step.h5", dims)
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistRedistributionManyShapes(t *testing.T) {
	cases := []struct {
		n, m int
		dims []int64
	}{
		{1, 1, []int64{16}},
		{4, 2, []int64{32}},
		{2, 5, []int64{40}},
		{6, 4, []int64{12, 12}},   // the paper's 6->4 example
		{4, 3, []int64{8, 6, 10}}, // 3-d
		{5, 2, []int64{7, 9}},     // non-divisible
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("n=%d,m=%d,dims=%v", c.n, c.m, c.dims), func(t *testing.T) {
			err := mpi.RunWorkflow([]mpi.TaskSpec{
				{Name: "producer", Procs: c.n, Main: func(p *mpi.Proc) {
					produceGrid(t, p, distFapl(p, "consumer"), "f.h5", c.dims)
				}},
				{Name: "consumer", Procs: c.m, Main: func(p *mpi.Proc) {
					consumeGridColumns(t, p, distFapl(p, "producer"), "f.h5", c.dims)
				}},
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDistConsumerReadsEverything(t *testing.T) {
	// Consumer reads the full dataset with a nil file space.
	dims := []int64{4, 4}
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "prod", Procs: 2, Main: func(p *mpi.Proc) {
			produceGrid(t, p, distFapl(p, "cons"), "full.h5", dims)
		}},
		{Name: "cons", Procs: 1, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("prod"))
			f, err := h5.OpenFile("full.h5", h5.NewFileAccessProps(vol))
			if err != nil {
				t.Error(err)
				return
			}
			ds, err := f.OpenDataset("group1/grid")
			if err != nil {
				t.Error(err)
				f.Close()
				return
			}
			out := make([]uint64, 16)
			if err := ds.Read(nil, nil, h5.Bytes(out)); err != nil {
				t.Error(err)
			}
			for i := range out {
				if out[i] != uint64(i) {
					t.Errorf("out[%d]=%d", i, out[i])
					break
				}
			}
			f.Close()
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistMetadataAndAttributes(t *testing.T) {
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "prod", Procs: 2, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("cons"))
			f, _ := h5.CreateFile("meta.h5", h5.NewFileAccessProps(vol))
			g, _ := f.CreateGroup("g")
			g.WriteAttribute("dt", h5.F64, h5.Bytes([]float64{0.01}))
			ds, _ := g.CreateDataset("d", h5.F32, h5.NewSimple(4))
			ds.WriteAttribute("units", h5.NewString(1), []byte("m"))
			if p.Task.Rank() == 0 {
				ds.Write(nil, nil, h5.Bytes([]float32{1, 2, 3, 4}))
			}
			f.Close()
		}},
		{Name: "cons", Procs: 1, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("prod"))
			f, err := h5.OpenFile("meta.h5", h5.NewFileAccessProps(vol))
			if err != nil {
				t.Error(err)
				return
			}
			g, err := f.OpenGroup("g")
			if err != nil {
				t.Error(err)
				f.Close()
				return
			}
			dt, data, err := g.ReadAttribute("dt")
			if err != nil || !dt.Equal(h5.F64) || h5.View[float64](data)[0] != 0.01 {
				t.Errorf("group attribute: %v %v %v", dt, data, err)
			}
			kids, _ := g.Children()
			if len(kids) != 1 || kids[0].Name != "d" || kids[0].Kind != h5.KindDataset {
				t.Errorf("children %v", kids)
			}
			ds, _ := g.OpenDataset("d")
			_, udata, err := ds.ReadAttribute("units")
			if err != nil || string(udata) != "m" {
				t.Errorf("dataset attribute %q %v", udata, err)
			}
			out := make([]float32, 4)
			if err := ds.Read(nil, nil, h5.Bytes(out)); err != nil {
				t.Error(err)
			}
			if out[3] != 4 {
				t.Errorf("data %v", out)
			}
			// Remote files are read-only.
			if err := ds.Write(nil, nil, h5.Bytes(out)); err == nil {
				t.Error("write to remote dataset should fail")
			}
			if _, err := f.CreateGroup("new"); err == nil {
				t.Error("group create on remote file should fail")
			}
			f.Close()
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistFanOutTwoConsumerTasks(t *testing.T) {
	// One producer serves the same file to two consumer tasks.
	dims := []int64{8, 8}
	consume := func(other string) func(p *mpi.Proc) {
		return func(p *mpi.Proc) {
			consumeGridColumns(t, p, distFapl(p, "prod"), "fan.h5", dims)
			_ = other
		}
	}
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "prod", Procs: 3, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("consA"), p.Intercomm("consB"))
			fapl := h5.NewFileAccessProps(vol)
			f, _ := h5.CreateFile("fan.h5", fapl)
			g, _ := f.CreateGroup("group1")
			ds, _ := g.CreateDataset("grid", h5.U64, h5.NewSimple(dims...))
			n, r := int64(p.Task.Size()), int64(p.Task.Rank())
			r0, r1 := r*dims[0]/n, (r+1)*dims[0]/n-1
			sel := h5.NewSimple(dims...)
			sel.SelectHyperslab(h5.SelectSet, []int64{r0, 0}, []int64{r1 - r0 + 1, dims[1]})
			vals := make([]uint64, (r1-r0+1)*dims[1])
			for i := range vals {
				vals[i] = uint64(r0*dims[1] + int64(i))
			}
			ds.Write(nil, sel, h5.Bytes(vals))
			f.Close()
		}},
		{Name: "consA", Procs: 2, Main: consume("consA")},
		{Name: "consB", Procs: 4, Main: consume("consB")},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistFanInTwoProducerTasks(t *testing.T) {
	// Two producer tasks each publish their own file to one consumer task.
	dimsA := []int64{6, 4}
	dimsB := []int64{10}
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "prodA", Procs: 2, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("a.h5", p.Intercomm("cons"))
			f, _ := h5.CreateFile("a.h5", h5.NewFileAccessProps(vol))
			g, _ := f.CreateGroup("group1")
			ds, _ := g.CreateDataset("grid", h5.U64, h5.NewSimple(dimsA...))
			n, r := int64(p.Task.Size()), int64(p.Task.Rank())
			r0, r1 := r*dimsA[0]/n, (r+1)*dimsA[0]/n-1
			sel := h5.NewSimple(dimsA...)
			sel.SelectHyperslab(h5.SelectSet, []int64{r0, 0}, []int64{r1 - r0 + 1, dimsA[1]})
			vals := make([]uint64, (r1-r0+1)*dimsA[1])
			for i := range vals {
				vals[i] = uint64(r0*dimsA[1] + int64(i))
			}
			ds.Write(nil, sel, h5.Bytes(vals))
			f.Close()
		}},
		{Name: "prodB", Procs: 3, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("b.h5", p.Intercomm("cons"))
			f, _ := h5.CreateFile("b.h5", h5.NewFileAccessProps(vol))
			ds, _ := f.CreateDataset("list", h5.U64, h5.NewSimple(dimsB...))
			n, r := int64(p.Task.Size()), int64(p.Task.Rank())
			r0, r1 := r*dimsB[0]/n, (r+1)*dimsB[0]/n-1
			if r1 >= r0 {
				sel := h5.NewSimple(dimsB...)
				sel.SelectHyperslab(h5.SelectSet, []int64{r0}, []int64{r1 - r0 + 1})
				vals := make([]uint64, r1-r0+1)
				for i := range vals {
					vals[i] = uint64(r0 + int64(i))
				}
				ds.Write(nil, sel, h5.Bytes(vals))
			}
			f.Close()
		}},
		{Name: "cons", Procs: 2, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("a.h5", p.Intercomm("prodA"))
			vol.SetIntercomm("b.h5", p.Intercomm("prodB"))
			fapl := h5.NewFileAccessProps(vol)
			fa, err := h5.OpenFile("a.h5", fapl)
			if err != nil {
				t.Error(err)
				return
			}
			da, _ := fa.OpenDataset("group1/grid")
			outA := make([]uint64, 24)
			if err := da.Read(nil, nil, h5.Bytes(outA)); err != nil {
				t.Error(err)
			}
			if outA[23] != 23 {
				t.Errorf("a.h5 data %v", outA)
			}
			fb, err := h5.OpenFile("b.h5", fapl)
			if err != nil {
				t.Error(err)
				fa.Close()
				return
			}
			db, _ := fb.OpenDataset("list")
			outB := make([]uint64, 10)
			if err := db.Read(nil, nil, h5.Bytes(outB)); err != nil {
				t.Error(err)
			}
			if outB[9] != 9 {
				t.Errorf("b.h5 data %v", outB)
			}
			fa.Close()
			fb.Close()
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistMultipleTimesteps(t *testing.T) {
	// Two sequential files over one intercomm, as a simulation time loop does.
	dims := []int64{8}
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "prod", Procs: 2, Main: func(p *mpi.Proc) {
			fapl := distFapl(p, "cons")
			for step := 0; step < 2; step++ {
				produceGrid(t, p, fapl, fmt.Sprintf("step%d.h5", step), dims)
			}
		}},
		{Name: "cons", Procs: 3, Main: func(p *mpi.Proc) {
			fapl := distFapl(p, "prod")
			for step := 0; step < 2; step++ {
				consumeGridColumns(t, p, fapl, fmt.Sprintf("step%d.h5", step), dims)
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistZeroCopyProducer(t *testing.T) {
	// Shallow (zero-copy) datasets serve correctly when the user buffer is
	// kept alive and unmodified until the close.
	dims := []int64{16}
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "prod", Procs: 2, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("cons"))
			vol.SetZeroCopy("*", "*")
			f, _ := h5.CreateFile("zc.h5", h5.NewFileAccessProps(vol))
			ds, _ := f.CreateDataset("d", h5.U64, h5.NewSimple(dims...))
			n, r := int64(p.Task.Size()), int64(p.Task.Rank())
			r0, r1 := r*dims[0]/n, (r+1)*dims[0]/n-1
			sel := h5.NewSimple(dims...)
			sel.SelectHyperslab(h5.SelectSet, []int64{r0}, []int64{r1 - r0 + 1})
			vals := make([]uint64, r1-r0+1)
			for i := range vals {
				vals[i] = uint64(r0 + int64(i))
			}
			ds.Write(nil, sel, h5.Bytes(vals)) // shallow: vals must stay alive
			f.Close()
		}},
		{Name: "cons", Procs: 1, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("prod"))
			f, err := h5.OpenFile("zc.h5", h5.NewFileAccessProps(vol))
			if err != nil {
				t.Error(err)
				return
			}
			ds, _ := f.OpenDataset("d")
			out := make([]uint64, 16)
			if err := ds.Read(nil, nil, h5.Bytes(out)); err != nil {
				t.Error(err)
			}
			for i := range out {
				if out[i] != uint64(i) {
					t.Errorf("out[%d]=%d", i, out[i])
					break
				}
			}
			f.Close()
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDistRandomizedRedistribution is a property-style end-to-end test:
// each producer writes a pseudo-random sub-box of its block (so parts of
// the dataset stay unwritten), and each consumer reads pseudo-random query
// boxes. Both sides derive the written boxes deterministically from the
// seed, so consumers can compute the expected value of every cell
// (position-encoded where covered, zero elsewhere).
func TestDistRandomizedRedistribution(t *testing.T) {
	dims := []int64{16, 12}
	const nProd, nCons = 4, 3
	writtenBox := func(seed int64, rank int) grid.Box {
		dc := grid.CommonDecomposition(dims, nProd)
		blk := dc.Block(rank)
		rng := rand.New(rand.NewSource(seed*1000 + int64(rank)))
		b := grid.Box{Min: make([]int64, 2), Max: make([]int64, 2)}
		for d := 0; d < 2; d++ {
			span := blk.Max[d] - blk.Min[d] + 1
			lo := blk.Min[d] + rng.Int63n(span)
			hi := lo + rng.Int63n(blk.Max[d]-lo+1)
			b.Min[d], b.Max[d] = lo, hi
		}
		return b
	}
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			err := mpi.RunWorkflow([]mpi.TaskSpec{
				{Name: "prod", Procs: nProd, Main: func(p *mpi.Proc) {
					vol := core.NewDistMetadataVOL(p.Task, nil)
					vol.SetIntercomm("*", p.Intercomm("cons"))
					f, err := h5.CreateFile("rand.h5", h5.NewFileAccessProps(vol))
					if err != nil {
						t.Error(err)
						return
					}
					ds, err := f.CreateDataset("d", h5.U64, h5.NewSimple(dims...))
					if err != nil {
						t.Error(err)
						return
					}
					box := writtenBox(seed, p.Task.Rank())
					if !box.IsEmpty() {
						sel := h5.NewSimple(dims...)
						if err := sel.SelectBox(h5.SelectSet, box); err != nil {
							t.Error(err)
							return
						}
						vals := make([]uint64, box.NumPoints())
						i := 0
						box.Runs(dims, func(off, n int64) {
							for k := int64(0); k < n; k++ {
								vals[i] = uint64(off+k) + 1 // +1 so 0 means "unwritten"
								i++
							}
						})
						if err := ds.Write(nil, sel, h5.Bytes(vals)); err != nil {
							t.Error(err)
						}
					}
					if err := f.Close(); err != nil {
						t.Error(err)
					}
				}},
				{Name: "cons", Procs: nCons, Main: func(p *mpi.Proc) {
					vol := core.NewDistMetadataVOL(p.Task, nil)
					vol.SetIntercomm("*", p.Intercomm("prod"))
					f, err := h5.OpenFile("rand.h5", h5.NewFileAccessProps(vol))
					if err != nil {
						t.Error(err)
						return
					}
					ds, err := f.OpenDataset("d")
					if err != nil {
						t.Error(err)
						f.Close()
						return
					}
					written := make([]grid.Box, nProd)
					for r := 0; r < nProd; r++ {
						written[r] = writtenBox(seed, r)
					}
					rng := rand.New(rand.NewSource(seed*77 + int64(p.Task.Rank())))
					for q := 0; q < 3; q++ {
						qb := grid.Box{Min: make([]int64, 2), Max: make([]int64, 2)}
						for d := 0; d < 2; d++ {
							lo := rng.Int63n(dims[d])
							qb.Min[d] = lo
							qb.Max[d] = lo + rng.Int63n(dims[d]-lo)
						}
						sel := h5.NewSimple(dims...)
						if err := sel.SelectBox(h5.SelectSet, qb); err != nil {
							t.Error(err)
							return
						}
						out := make([]uint64, qb.NumPoints())
						if err := ds.Read(nil, sel, h5.Bytes(out)); err != nil {
							t.Error(err)
							return
						}
						i := 0
						qb.Runs(dims, func(off, n int64) {
							for k := int64(0); k < n; k++ {
								pt := grid.Coords(dims, off+k)
								want := uint64(0)
								for _, wb := range written {
									if wb.Contains(pt) {
										want = uint64(off+k) + 1
										break
									}
								}
								if out[i] != want {
									t.Errorf("seed %d query %d: cell %v = %d want %d", seed, q, pt, out[i], want)
								}
								i++
							}
						})
					}
					if err := f.Close(); err != nil {
						t.Error(err)
					}
				}},
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDistRemoteReadOnlySurface(t *testing.T) {
	// Exercise the consumer-side handle surface: listings, attribute reads,
	// and every mutating operation rejected.
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "prod", Procs: 1, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("cons"))
			if vol.ConnectorName() == "" {
				t.Error("dist VOL must be named")
			}
			f, _ := h5.CreateFile("ro.h5", h5.NewFileAccessProps(vol))
			g, _ := f.CreateGroup("g")
			g.WriteAttribute("ga", h5.U8, []byte{5})
			ds, _ := g.CreateDataset("d", h5.U8, h5.NewSimple(2))
			ds.WriteAttribute("da", h5.U8, []byte{6})
			ds.Write(nil, nil, []byte{1, 2})
			f.Close()
			if len(vol.FileNames()) != 1 {
				t.Errorf("files %v", vol.FileNames())
			}
		}},
		{Name: "cons", Procs: 1, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("prod"))
			f, err := h5.OpenFile("ro.h5", h5.NewFileAccessProps(vol))
			if err != nil {
				t.Error(err)
				return
			}
			// Root listing and attribute surface.
			kids, err := f.Children()
			if err != nil || len(kids) != 1 || kids[0].Name != "g" {
				t.Errorf("kids=%v err=%v", kids, err)
			}
			if names, _ := f.AttributeNames(); len(names) != 0 {
				t.Errorf("root attrs %v", names)
			}
			if _, _, err := f.ReadAttribute("nope"); err == nil {
				t.Error("missing root attribute should fail")
			}
			g, err := f.OpenGroup("g")
			if err != nil {
				t.Error(err)
				f.Close()
				return
			}
			if names, _ := g.AttributeNames(); len(names) != 1 || names[0] != "ga" {
				t.Errorf("group attrs %v", names)
			}
			gkids, _ := g.Children()
			if len(gkids) != 1 || gkids[0].Kind != h5.KindDataset {
				t.Errorf("group kids %v", gkids)
			}
			ds, _ := g.OpenDataset("d")
			if names, _ := ds.AttributeNames(); len(names) != 1 || names[0] != "da" {
				t.Errorf("dataset attrs %v", names)
			}
			if _, _, err := ds.ReadAttribute("nope"); err == nil {
				t.Error("missing dataset attribute should fail")
			}
			// Every mutation is rejected on remote handles.
			if _, err := g.CreateGroup("x"); err == nil {
				t.Error("remote group create should fail")
			}
			if _, err := g.CreateDataset("x", h5.U8, h5.NewSimple(1)); err == nil {
				t.Error("remote dataset create should fail")
			}
			if _, err := f.CreateDataset("x", h5.U8, h5.NewSimple(1)); err == nil {
				t.Error("remote root dataset create should fail")
			}
			if err := g.WriteAttribute("x", h5.U8, []byte{1}); err == nil {
				t.Error("remote group attribute write should fail")
			}
			if err := f.WriteAttribute("x", h5.U8, []byte{1}); err == nil {
				t.Error("remote root attribute write should fail")
			}
			if err := ds.WriteAttribute("x", h5.U8, []byte{1}); err == nil {
				t.Error("remote dataset attribute write should fail")
			}
			// Missing objects fail cleanly.
			if _, err := f.OpenGroup("missing"); err == nil {
				t.Error("missing remote group should fail")
			}
			if _, err := g.OpenDataset("missing"); err == nil {
				t.Error("missing remote dataset should fail")
			}
			f.Close()
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestServeStats(t *testing.T) {
	dims := []int64{8}
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "prod", Procs: 1, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("cons"))
			produceGrid(t, p, h5.NewFileAccessProps(vol), "st.h5", dims)
			st := vol.Stats()
			if st.MetadataRequests != 1 {
				t.Errorf("metadata requests %d", st.MetadataRequests)
			}
			if st.BoxQueries == 0 || st.DataQueries == 0 {
				t.Errorf("queries %+v", st)
			}
			if st.BytesServed < dims[0]*8 {
				t.Errorf("bytes served %d", st.BytesServed)
			}
			if st.DoneMessages != 1 {
				t.Errorf("done messages %d", st.DoneMessages)
			}
		}},
		{Name: "cons", Procs: 1, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("prod"))
			consumeGridColumns(t, p, h5.NewFileAccessProps(vol), "st.h5", dims)
			// A pure consumer serves nothing.
			if st := vol.Stats(); st != (core.ServeStats{}) {
				t.Errorf("consumer stats %+v", st)
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistPointSelectionRead(t *testing.T) {
	// Consumers can read HDF5 point selections; the transport moves exactly
	// those elements.
	dims := []int64{4, 4}
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "prod", Procs: 2, Main: func(p *mpi.Proc) {
			produceGrid(t, p, distFapl(p, "cons"), "pts.h5", dims)
		}},
		{Name: "cons", Procs: 1, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("prod"))
			f, err := h5.OpenFile("pts.h5", h5.NewFileAccessProps(vol))
			if err != nil {
				t.Error(err)
				return
			}
			ds, _ := f.OpenDataset("group1/grid")
			sel := h5.NewSimple(dims...)
			pts := [][]int64{{0, 0}, {3, 3}, {1, 2}, {2, 1}}
			if err := sel.SelectPoints(h5.SelectSet, pts); err != nil {
				t.Error(err)
				return
			}
			out := make([]uint64, len(pts))
			if err := ds.Read(nil, sel, h5.Bytes(out)); err != nil {
				t.Error(err)
			}
			for i, pt := range pts {
				want := uint64(pt[0]*dims[1] + pt[1])
				if out[i] != want {
					t.Errorf("point %v = %d want %d", pt, out[i], want)
				}
			}
			f.Close()
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistMultiBlockHyperslabRead(t *testing.T) {
	// An OR-ed multi-block selection travels as multiple query boxes.
	dims := []int64{8}
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "prod", Procs: 2, Main: func(p *mpi.Proc) {
			produceGrid(t, p, distFapl(p, "cons"), "mb.h5", dims)
		}},
		{Name: "cons", Procs: 1, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("prod"))
			f, err := h5.OpenFile("mb.h5", h5.NewFileAccessProps(vol))
			if err != nil {
				t.Error(err)
				return
			}
			ds, _ := f.OpenDataset("group1/grid")
			sel := h5.NewSimple(dims...)
			sel.SelectHyperslab(h5.SelectSet, []int64{1}, []int64{2}) // 1,2
			sel.SelectHyperslab(h5.SelectOr, []int64{5}, []int64{2})  // 5,6
			out := make([]uint64, 4)
			if err := ds.Read(nil, sel, h5.Bytes(out)); err != nil {
				t.Error(err)
			}
			want := []uint64{1, 2, 5, 6}
			for i := range want {
				if out[i] != want[i] {
					t.Errorf("out[%d]=%d want %d", i, out[i], want[i])
				}
			}
			f.Close()
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistLargeWorld(t *testing.T) {
	// A bigger world: 96 producers -> 32 consumers, full validation.
	if testing.Short() {
		t.Skip("large world test")
	}
	dims := []int64{48, 32, 16}
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "producer", Procs: 96, Main: func(p *mpi.Proc) {
			produceGrid(t, p, distFapl(p, "consumer"), "large.h5", dims)
		}},
		{Name: "consumer", Procs: 32, Main: func(p *mpi.Proc) {
			consumeGridColumns(t, p, distFapl(p, "producer"), "large.h5", dims)
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLazyServeOnlySendsConsumedDatasets(t *testing.T) {
	// The paper's motivating property (§I): a producer publishes many
	// datasets, the consumer reads one — with shallow (zero-copy) writes the
	// others are never serialized or transported.
	dims := []int64{16, 16}
	bigBytes := dims[0] * dims[1] * 8
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "prod", Procs: 1, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("cons"))
			vol.SetZeroCopy("*", "*")
			f, _ := h5.CreateFile("many.h5", h5.NewFileAccessProps(vol))
			// One small dataset the consumer wants, three big ones it skips.
			small, _ := f.CreateDataset("wanted", h5.U64, h5.NewSimple(8))
			sv := make([]uint64, 8)
			for i := range sv {
				sv[i] = uint64(i)
			}
			small.Write(nil, nil, h5.Bytes(sv))
			var keepAlive [][]uint64
			for _, name := range []string{"big1", "big2", "big3"} {
				ds, _ := f.CreateDataset(name, h5.U64, h5.NewSimple(dims...))
				vals := make([]uint64, dims[0]*dims[1])
				keepAlive = append(keepAlive, vals)
				ds.Write(nil, nil, h5.Bytes(vals))
			}
			if err := f.Close(); err != nil {
				t.Error(err)
			}
			_ = keepAlive
			st := vol.Stats()
			if st.DataQueries != 1 {
				t.Errorf("data queries %d, want 1 (only the wanted dataset)", st.DataQueries)
			}
			if st.BytesServed >= bigBytes {
				t.Errorf("served %d bytes — unread datasets were transported", st.BytesServed)
			}
		}},
		{Name: "cons", Procs: 1, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("prod"))
			f, err := h5.OpenFile("many.h5", h5.NewFileAccessProps(vol))
			if err != nil {
				t.Error(err)
				return
			}
			ds, _ := f.OpenDataset("wanted")
			out := make([]uint64, 8)
			if err := ds.Read(nil, nil, h5.Bytes(out)); err != nil {
				t.Error(err)
			}
			if out[7] != 7 {
				t.Errorf("data %v", out)
			}
			f.Close()
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestServeAsyncOverlapsNextStep(t *testing.T) {
	// The paper's future-work overlap: the producer serves snapshot k in the
	// background while computing and publishing snapshot k+1.
	dims := []int64{12}
	const steps = 3
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "prod", Procs: 2, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("cons"))
			vol.ServeOnClose = false
			fapl := h5.NewFileAccessProps(vol)
			var pending []*core.ServeHandle
			for step := 0; step < steps; step++ {
				name := fmt.Sprintf("as%d.h5", step)
				produceGrid(t, p, fapl, name, dims) // close does NOT serve
				h, err := vol.ServeAsync(name)
				if err != nil {
					t.Error(err)
					return
				}
				pending = append(pending, h)
				// ... compute the next step while the previous serves ...
			}
			for _, h := range pending {
				if err := h.Wait(); err != nil {
					t.Error(err)
				}
			}
		}},
		{Name: "cons", Procs: 3, Main: func(p *mpi.Proc) {
			fapl := distFapl(p, "prod")
			for step := 0; step < steps; step++ {
				consumeGridColumns(t, p, fapl, fmt.Sprintf("as%d.h5", step), dims)
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestServeAsyncErrors(t *testing.T) {
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "prod", Procs: 1, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("routed.h5", p.Intercomm("cons"))
			if _, err := vol.ServeAsync("missing.h5"); err == nil {
				t.Error("serving a missing file should fail")
			}
			f, _ := h5.CreateFile("unrouted.h5", h5.NewFileAccessProps(vol))
			f.Close() // no intercomm matches; close serves nothing
			if _, err := vol.ServeAsync("unrouted.h5"); err == nil {
				t.Error("serving a file with no intercomm should fail")
			}
			// Release the consumer, which waits on the routed file.
			vol.ServeOnClose = true
			rf, _ := h5.CreateFile("routed.h5", h5.NewFileAccessProps(vol))
			ds, _ := rf.CreateDataset("d", h5.U8, h5.NewSimple(2))
			ds.Write(nil, nil, []byte{1, 2})
			rf.Close()
		}},
		{Name: "cons", Procs: 1, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("routed.h5", p.Intercomm("prod"))
			f, err := h5.OpenFile("routed.h5", h5.NewFileAccessProps(vol))
			if err != nil {
				t.Error(err)
				return
			}
			ds, _ := f.OpenDataset("d")
			out := make([]byte, 2)
			if err := ds.Read(nil, nil, out); err != nil {
				t.Error(err)
			}
			f.Close()
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistDeleteRejectedOnRemote(t *testing.T) {
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "prod", Procs: 1, Main: func(p *mpi.Proc) {
			produceGrid(t, p, distFapl(p, "cons"), "rd.h5", []int64{8})
		}},
		{Name: "cons", Procs: 1, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("prod"))
			f, err := h5.OpenFile("rd.h5", h5.NewFileAccessProps(vol))
			if err != nil {
				t.Error(err)
				return
			}
			if err := f.Delete("group1"); err == nil {
				t.Error("delete on remote file should fail")
			}
			g, _ := f.OpenGroup("group1")
			if err := g.Delete("grid"); err == nil {
				t.Error("delete on remote group should fail")
			}
			f.Close()
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistSoakManyTimesteps(t *testing.T) {
	// A longer pipeline soak: 10 timesteps, alternating serve modes, with
	// the consumer racing ahead (no external step barrier). Exercises the
	// request-parking and session-multiplexing machinery.
	dims := []int64{10}
	const steps = 10
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "prod", Procs: 3, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("cons"))
			fapl := h5.NewFileAccessProps(vol)
			var pending []*core.ServeHandle
			for s := 0; s < steps; s++ {
				async := s%2 == 1
				vol.ServeOnClose = !async
				name := fmt.Sprintf("soak%d.h5", s)
				produceGrid(t, p, fapl, name, dims)
				if async {
					h, err := vol.ServeAsync(name)
					if err != nil {
						t.Error(err)
						return
					}
					pending = append(pending, h)
				}
			}
			for _, h := range pending {
				if err := h.Wait(); err != nil {
					t.Error(err)
				}
			}
			st := vol.Stats()
			if st.DoneMessages != steps*2 { // 2 consumer ranks x steps
				t.Errorf("done messages %d want %d", st.DoneMessages, steps*2)
			}
		}},
		{Name: "cons", Procs: 2, Main: func(p *mpi.Proc) {
			fapl := distFapl(p, "prod")
			for s := 0; s < steps; s++ {
				consumeGridColumns(t, p, fapl, fmt.Sprintf("soak%d.h5", s), dims)
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistReadAsConversionInSitu(t *testing.T) {
	// A consumer reads a producer's uint32 dataset as float64, and extracts
	// a compound field subset, all over the in situ transport.
	full, _ := h5.NewCompound(12,
		h5.Field{Name: "id", Offset: 0, Type: h5.U32},
		h5.Field{Name: "m", Offset: 4, Type: h5.F64},
	)
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "prod", Procs: 2, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("cons"))
			f, _ := h5.CreateFile("conv.h5", h5.NewFileAccessProps(vol))
			ints, _ := f.CreateDataset("ints", h5.U32, h5.NewSimple(8))
			r := int64(p.Task.Rank())
			sel := h5.NewSimple(8)
			sel.SelectHyperslab(h5.SelectSet, []int64{r * 4}, []int64{4})
			vals := make([]uint32, 4)
			for i := range vals {
				vals[i] = uint32(r*4) + uint32(i)
			}
			ints.Write(nil, sel, h5.Bytes(vals))
			recs, _ := f.CreateDataset("recs", full, h5.NewSimple(4))
			if r == 0 {
				buf := make([]byte, 4*12)
				for i := 0; i < 4; i++ {
					copy(buf[i*12:], h5.Bytes([]uint32{uint32(i)}))
					copy(buf[i*12+4:], h5.Bytes([]float64{float64(i) * 2.5}))
				}
				recs.Write(nil, nil, buf)
			}
			if err := f.Close(); err != nil {
				t.Error(err)
			}
		}},
		{Name: "cons", Procs: 1, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("prod"))
			f, err := h5.OpenFile("conv.h5", h5.NewFileAccessProps(vol))
			if err != nil {
				t.Error(err)
				return
			}
			ints, _ := f.OpenDataset("ints")
			fs := make([]float64, 8)
			if err := ints.ReadAs(h5.F64, nil, h5.Bytes(fs)); err != nil {
				t.Error(err)
			}
			for i, v := range fs {
				if v != float64(i) {
					t.Errorf("fs[%d]=%v", i, v)
					break
				}
			}
			recs, _ := f.OpenDataset("recs")
			mOnly, _ := h5.NewCompound(8, h5.Field{Name: "m", Offset: 0, Type: h5.F64})
			out := make([]byte, 4*8)
			if err := recs.ReadAs(mOnly, nil, out); err != nil {
				t.Error(err)
			}
			ms := h5.View[float64](out)
			for i := range ms {
				if ms[i] != float64(i)*2.5 {
					t.Errorf("m[%d]=%v", i, ms[i])
					break
				}
			}
			f.Close()
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}
