package core_test

import (
	"testing"

	"lowfive/h5"
	"lowfive/internal/core"
	"lowfive/internal/grid"
	"lowfive/internal/native"
	"lowfive/internal/pfs"
	"lowfive/mpi"
)

// TestPersistOwnershipAndRejoin round-trips a served passthru file through a
// simulated restart: a fresh VOL instance rebuilds the metadata tree from
// the container on storage using the persisted __lf_own_<rank> attributes
// and ends up with the exact regions and bytes the first incarnation wrote.
func TestPersistOwnershipAndRejoin(t *testing.T) {
	fs := pfs.NewZeroCost()
	dims := []int64{8, 6}
	stats := make([]core.RejoinStats, 2)
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "producer", Procs: 2, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, native.New(native.PFSBackend(fs)))
			vol.SetIntercomm("*", p.Intercomm("consumer"))
			vol.SetPassthru("*", true)
			vol.PersistOwnership = true
			fapl := h5.NewFileAccessProps(vol)

			f, err := h5.CreateFile("rejoin.h5", fapl)
			if err != nil {
				t.Error(err)
				return
			}
			if err := f.WriteAttribute("note", h5.U8, []byte("kept")); err != nil {
				t.Error(err)
			}
			g, _ := f.CreateGroup("group1")
			ds, err := g.CreateDataset("grid", h5.U64, h5.NewSimple(dims...))
			if err != nil {
				t.Error(err)
				return
			}
			// Row halves: rank 0 rows 0–3, rank 1 rows 4–7; value = global index.
			r := int64(p.Task.Rank())
			sel := h5.NewSimple(dims...)
			sel.SelectHyperslab(h5.SelectSet, []int64{r * 4, 0}, []int64{4, dims[1]})
			vals := make([]uint64, 4*dims[1])
			for i := range vals {
				vals[i] = uint64(r*4*dims[1] + int64(i))
			}
			if err := ds.Write(nil, sel, h5.Bytes(vals)); err != nil {
				t.Error(err)
			}
			ds.Close()
			g.Close()
			if err := f.Close(); err != nil { // indexes, persists ownership, serves
				t.Error(err)
				return
			}

			// Fresh incarnation: a new VOL with nothing in memory rebuilds
			// from the container file.
			vol2 := core.NewDistMetadataVOL(p.Task, native.New(native.PFSBackend(fs)))
			vol2.SetPassthru("*", true)
			rs, err := vol2.Rejoin("rejoin.h5")
			if err != nil {
				t.Errorf("rank %d: Rejoin: %v", r, err)
				return
			}
			stats[r] = rs

			fn, ok := vol2.File("rejoin.h5")
			if !ok {
				t.Error("rejoined file not in memory")
				return
			}
			if a, ok := fn.Attribute("note"); !ok || string(a.Data) != "kept" {
				t.Errorf("rank %d: attribute not restored: %v", r, a)
			}
			for _, an := range fn.AttributeNames() {
				if len(an) >= 9 && an[:9] == "__lf_own_" {
					t.Errorf("ownership attribute %q leaked into rejoined tree", an)
				}
			}
			node, err := fn.Resolve("group1/grid")
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			boxes := node.WrittenBoxes()
			want := grid.Box{Min: []int64{r * 4, 0}, Max: []int64{r*4 + 3, dims[1] - 1}}
			if len(boxes) != 1 || !boxes[0].Equal(want) {
				t.Errorf("rank %d: rejoined boxes %v, want [%v]", r, boxes, want)
			}
			if len(node.Triples) == 1 {
				data := node.Triples[0].PackedData(8)
				got := h5.View[uint64](data)
				for i, v := range got {
					if v != uint64(r*4*dims[1]+int64(i)) {
						t.Errorf("rank %d: rejoined element %d = %d", r, i, v)
						break
					}
				}
			}
		}},
		{Name: "consumer", Procs: 2, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, native.New(native.PFSBackend(fs)))
			vol.SetIntercomm("*", p.Intercomm("producer"))
			fapl := h5.NewFileAccessProps(vol)
			consumeGridColumns(t, p, fapl, "rejoin.h5", dims)
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, rs := range stats {
		if !rs.Persisted {
			t.Errorf("rank %d: expected persisted ownership, got fallback", r)
		}
		if rs.Datasets != 1 || rs.Entries != 1 {
			t.Errorf("rank %d: stats %+v, want 1 dataset / 1 entry", r, rs)
		}
		if rs.Bytes != 4*6*8 {
			t.Errorf("rank %d: re-read %d bytes, want %d", r, rs.Bytes, 4*6*8)
		}
	}
}

// TestRejoinFallbackDecomposition rejoins a passthru file that was never
// served with ownership persistence: ranks reclaim the canonical block
// decomposition instead, which still covers the full extent.
func TestRejoinFallbackDecomposition(t *testing.T) {
	fs := pfs.NewZeroCost()
	dims := []int64{4, 4}
	stats := make([]core.RejoinStats, 2)
	covered := make([][]grid.Box, 2)
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "solo", Procs: 2, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, native.New(native.PFSBackend(fs)))
			vol.SetPassthru("*", true)
			vol.ServeOnClose = false // no intercomm: storage only
			fapl := h5.NewFileAccessProps(vol)
			f, err := h5.CreateFile("fb.h5", fapl)
			if err != nil {
				t.Error(err)
				return
			}
			ds, _ := f.CreateDataset("d", h5.U64, h5.NewSimple(dims...))
			r := int64(p.Task.Rank())
			sel := h5.NewSimple(dims...)
			sel.SelectHyperslab(h5.SelectSet, []int64{r * 2, 0}, []int64{2, dims[1]})
			vals := make([]uint64, 2*dims[1])
			for i := range vals {
				vals[i] = uint64(r*2*dims[1] + int64(i))
			}
			ds.Write(nil, sel, h5.Bytes(vals))
			ds.Close()
			if err := f.Close(); err != nil {
				t.Error(err)
				return
			}
			p.Task.Barrier() // both ranks' data on storage before either rejoins

			vol2 := core.NewDistMetadataVOL(p.Task, native.New(native.PFSBackend(fs)))
			vol2.SetPassthru("*", true)
			rs, err := vol2.Rejoin("fb.h5")
			if err != nil {
				t.Errorf("rank %d: Rejoin: %v", r, err)
				return
			}
			stats[r] = rs
			if fn, ok := vol2.File("fb.h5"); ok {
				if node, err := fn.Resolve("d"); err == nil {
					covered[r] = node.WrittenBoxes()
				}
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for r, rs := range stats {
		if rs.Persisted {
			t.Errorf("rank %d: expected fallback ownership", r)
		}
		if rs.Entries == 0 || rs.Bytes == 0 {
			t.Errorf("rank %d: nothing reclaimed: %+v", r, rs)
		}
		for _, b := range covered[r] {
			total += b.NumPoints()
		}
	}
	if total != dims[0]*dims[1] {
		t.Errorf("fallback blocks cover %d points, want %d", total, dims[0]*dims[1])
	}
}
