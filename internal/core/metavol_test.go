package core

import (
	"bytes"
	"testing"

	"lowfive/h5"
)

func memFapl() (*MetadataVOL, *h5.FileAccessProps) {
	vol := NewMetadataVOL(nil)
	return vol, h5.NewFileAccessProps(vol)
}

func TestMetaVOLCreateWriteRead(t *testing.T) {
	_, fapl := memFapl()
	f, err := h5.CreateFile("a.h5", fapl)
	if err != nil {
		t.Fatal(err)
	}
	g, err := f.CreateGroup("group1")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := g.CreateDataset("grid", h5.U64, h5.NewSimple(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]uint64, 16)
	for i := range vals {
		vals[i] = uint64(i * i)
	}
	if err := ds.Write(nil, nil, h5.Bytes(vals)); err != nil {
		t.Fatal(err)
	}
	out := make([]uint64, 16)
	if err := ds.Read(nil, nil, h5.Bytes(out)); err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if out[i] != vals[i] {
			t.Errorf("out[%d]=%d", i, out[i])
		}
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMetaVOLFilePersistsAfterClose(t *testing.T) {
	vol, fapl := memFapl()
	f, _ := h5.CreateFile("persist.h5", fapl)
	ds, _ := f.CreateDataset("x", h5.U8, h5.NewSimple(3))
	ds.Write(nil, nil, []byte{7, 8, 9})
	f.Close()

	f2, err := h5.OpenFile("persist.h5", fapl)
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := f2.OpenDataset("x")
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 3)
	ds2.Read(nil, nil, out)
	if !bytes.Equal(out, []byte{7, 8, 9}) {
		t.Errorf("got %v", out)
	}
	vol.RemoveFile("persist.h5")
	if _, err := h5.OpenFile("persist.h5", fapl); err == nil {
		t.Error("open after remove should fail")
	}
}

func TestMetaVOLNestedPaths(t *testing.T) {
	_, fapl := memFapl()
	f, _ := h5.CreateFile("n.h5", fapl)
	if _, err := f.CreateGroup("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CreateGroup("a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CreateDataset("a/b/d", h5.F32, h5.NewSimple(2)); err != nil {
		t.Fatal(err)
	}
	ds, err := f.OpenDataset("a/b/d")
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Datatype().Equal(h5.F32) {
		t.Errorf("type %v", ds.Datatype())
	}
	if _, err := f.CreateDataset("missing/d", h5.F32, h5.NewSimple(2)); err == nil {
		t.Error("creating under a missing group should fail")
	}
	kids, _ := f.Children()
	if len(kids) != 1 || kids[0].Name != "a" || kids[0].Kind != h5.KindGroup {
		t.Errorf("children %v", kids)
	}
}

func TestMetaVOLPartialWritesAndSelections(t *testing.T) {
	_, fapl := memFapl()
	f, _ := h5.CreateFile("p.h5", fapl)
	ds, _ := f.CreateDataset("d", h5.U8, h5.NewSimple(4, 4))
	// Two ranks' worth of row-wise writes.
	top := h5.NewSimple(4, 4)
	top.SelectHyperslab(h5.SelectSet, []int64{0, 0}, []int64{2, 4})
	ds.Write(nil, top, []byte{1, 1, 1, 1, 1, 1, 1, 1})
	bot := h5.NewSimple(4, 4)
	bot.SelectHyperslab(h5.SelectSet, []int64{2, 0}, []int64{2, 4})
	ds.Write(nil, bot, []byte{2, 2, 2, 2, 2, 2, 2, 2})
	// Column-wise read.
	col := h5.NewSimple(4, 4)
	col.SelectHyperslab(h5.SelectSet, []int64{0, 1}, []int64{4, 1})
	out := make([]byte, 4)
	if err := ds.Read(nil, col, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, []byte{1, 1, 2, 2}) {
		t.Errorf("column read %v", out)
	}
}

func TestMetaVOLMemSpaceTransfer(t *testing.T) {
	_, fapl := memFapl()
	f, _ := h5.CreateFile("m.h5", fapl)
	ds, _ := f.CreateDataset("d", h5.U8, h5.NewSimple(4))
	// Memory buffer is 8 wide; write elements 2..5 of it into the dataset.
	mem := h5.NewSimple(8)
	mem.SelectHyperslab(h5.SelectSet, []int64{2}, []int64{4})
	buf := []byte{0, 0, 10, 11, 12, 13, 0, 0}
	if err := ds.Write(mem, nil, buf); err != nil {
		t.Fatal(err)
	}
	// Read back into positions 1..4 of a 6-wide buffer.
	rmem := h5.NewSimple(6)
	rmem.SelectHyperslab(h5.SelectSet, []int64{1}, []int64{4})
	out := make([]byte, 6)
	if err := ds.Read(rmem, nil, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, []byte{0, 10, 11, 12, 13, 0}) {
		t.Errorf("got %v", out)
	}
}

func TestMetaVOLAttributes(t *testing.T) {
	_, fapl := memFapl()
	f, _ := h5.CreateFile("at.h5", fapl)
	g, _ := f.CreateGroup("g")
	if err := g.WriteAttribute("answer", h5.I64, h5.Bytes([]int64{42})); err != nil {
		t.Fatal(err)
	}
	dt, data, err := g.ReadAttribute("answer")
	if err != nil {
		t.Fatal(err)
	}
	if !dt.Equal(h5.I64) || h5.View[int64](data)[0] != 42 {
		t.Errorf("dt=%v data=%v", dt, data)
	}
	ds, _ := g.CreateDataset("d", h5.U8, h5.NewSimple(1))
	if err := ds.WriteAttribute("scale", h5.F64, h5.Bytes([]float64{2.5})); err != nil {
		t.Fatal(err)
	}
	names, _ := ds.AttributeNames()
	if len(names) != 1 || names[0] != "scale" {
		t.Errorf("names=%v", names)
	}
	if _, _, err := ds.ReadAttribute("missing"); err == nil {
		t.Error("missing attribute should fail")
	}
}

func TestMetaVOLZeroCopyPattern(t *testing.T) {
	vol, fapl := memFapl()
	vol.SetZeroCopy("z.h5", "/group1/*")
	f, _ := h5.CreateFile("z.h5", fapl)
	g, _ := f.CreateGroup("group1")
	ds, _ := g.CreateDataset("particles", h5.U8, h5.NewSimple(4))
	buf := []byte{1, 2, 3, 4}
	ds.Write(nil, nil, buf)
	fn, _ := vol.File("z.h5")
	node, _ := fn.Resolve("group1/particles")
	if node.Ownership != OwnShallow {
		t.Error("dataset matching zero-copy pattern should be shallow")
	}
	// Non-matching dataset stays deep.
	ds2, _ := f.CreateDataset("other", h5.U8, h5.NewSimple(1))
	_ = ds2
	n2, _ := fn.Resolve("other")
	if n2.Ownership != OwnDeep {
		t.Error("non-matching dataset should be deep")
	}
}

func TestMetaVOLPatternPrecedence(t *testing.T) {
	vol := NewMetadataVOL(nil)
	vol.SetMemory("*", true)
	vol.SetMemory("out-*.h5", false)
	if vol.memoryOn("data.h5") != true {
		t.Error("data.h5 should be memory")
	}
	if vol.memoryOn("out-1.h5") != false {
		t.Error("out-1.h5 should not be memory (later setting wins)")
	}
}

func TestMetaVOLNeitherModeFails(t *testing.T) {
	vol := NewMetadataVOL(nil)
	vol.SetMemory("*", false)
	fapl := h5.NewFileAccessProps(vol)
	if _, err := h5.CreateFile("x.h5", fapl); err == nil {
		t.Error("create with neither memory nor passthru should fail")
	}
}

func TestMetaVOLDuplicateCreateFails(t *testing.T) {
	_, fapl := memFapl()
	f, _ := h5.CreateFile("dup.h5", fapl)
	if _, err := f.CreateGroup("g"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CreateGroup("g"); err == nil {
		t.Error("duplicate group should fail")
	}
	if _, err := f.CreateDataset("g", h5.U8, h5.NewSimple(1)); err == nil {
		t.Error("dataset clashing with group name should fail")
	}
	if _, err := f.OpenDataset("g"); err == nil {
		t.Error("opening a group as dataset should fail")
	}
	if _, err := f.OpenGroup("nope"); err == nil {
		t.Error("opening a missing group should fail")
	}
}

func TestMetaVOLNamesAndListing(t *testing.T) {
	vol, fapl := memFapl()
	if vol.ConnectorName() == "" {
		t.Error("metadata VOL must be named")
	}
	f, _ := h5.CreateFile("list.h5", fapl)
	f.CreateGroup("g")
	ds, _ := f.CreateDataset("d", h5.U8, h5.NewSimple(1))
	if names := vol.FileNames(); len(names) != 1 || names[0] != "list.h5" {
		t.Errorf("files %v", names)
	}
	g, _ := f.OpenGroup("g")
	if names, err := g.AttributeNames(); err != nil || len(names) != 0 {
		t.Errorf("group attrs %v err=%v", names, err)
	}
	if names, err := ds.AttributeNames(); err != nil || len(names) != 0 {
		t.Errorf("dataset attrs %v err=%v", names, err)
	}
	if err := g.Close(); err != nil {
		t.Error(err)
	}
}

func TestDeleteObjects(t *testing.T) {
	_, fapl := memFapl()
	f, _ := h5.CreateFile("del.h5", fapl)
	f.CreateGroup("g")
	f.CreateGroup("g/sub")
	f.CreateDataset("g/sub/d", h5.U8, h5.NewSimple(4))
	f.CreateDataset("top", h5.U8, h5.NewSimple(4))

	// Delete a nested dataset.
	if err := f.Delete("g/sub/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.OpenDataset("g/sub/d"); err == nil {
		t.Error("deleted dataset should be gone")
	}
	// Delete a whole subtree.
	if err := f.Delete("g"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.OpenGroup("g"); err == nil {
		t.Error("deleted group should be gone")
	}
	kids, _ := f.Children()
	if len(kids) != 1 || kids[0].Name != "top" {
		t.Errorf("children %v", kids)
	}
	// A name can be reused after deletion.
	if _, err := f.CreateGroup("g"); err != nil {
		t.Errorf("recreate after delete: %v", err)
	}
	if err := f.Delete("missing"); err == nil {
		t.Error("deleting a missing child should fail")
	}
}
