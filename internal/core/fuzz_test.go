package core

import (
	"testing"

	"lowfive/h5"
	"lowfive/internal/grid"
)

// Fuzz targets for the wire-protocol decoders. Every decoder must return an
// error (or an empty value) on corrupt input — never panic, hang, or allocate
// proportionally to a claimed count the buffer cannot back.

// seedMutations derives truncated and bit-flipped variants of a valid
// encoding so the fuzzer starts near the interesting boundaries.
func seedMutations(f *testing.F, valid []byte) {
	f.Add(valid)
	for _, cut := range []int{0, 1, len(valid) / 2, len(valid) - 1} {
		if cut >= 0 && cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	for _, pos := range []int{0, 7, len(valid) / 3, len(valid) - 1} {
		if pos >= 0 && pos < len(valid) {
			mut := append([]byte(nil), valid...)
			mut[pos] ^= 0xff
			f.Add(mut)
		}
	}
}

func validBoxBytes() []byte {
	e := &h5.Encoder{}
	encodeBox(e, grid.Box{Min: []int64{0, -3}, Max: []int64{15, 9}})
	return e.Buf
}

func FuzzDecodeBox(f *testing.F) {
	seedMutations(f, validBoxBytes())
	f.Fuzz(func(t *testing.T, buf []byte) {
		d := &h5.Decoder{Buf: buf}
		b := decodeBox(d)
		if d.Err == nil && len(b.Min) != len(b.Max) {
			t.Errorf("accepted box with mismatched ranks: %v", b)
		}
	})
}

func FuzzDecodeTree(f *testing.F) {
	root := NewGroupNode("/")
	g := NewGroupNode("state")
	ds := NewDatasetNode("grid", h5.F64, h5.NewSimple(4, 4))
	ds.SetAttribute(&Attribute{
		Name:  "units",
		Type:  h5.I64,
		Space: h5.Scalar(),
		Data:  []byte{1, 0, 0, 0, 0, 0, 0, 0},
	})
	_ = g.AddChild(ds)
	_ = root.AddChild(g)
	e := &h5.Encoder{}
	EncodeTree(e, root, nil)
	seedMutations(f, e.Buf)
	f.Fuzz(func(t *testing.T, buf []byte) {
		d := &h5.Decoder{Buf: buf}
		n, err := DecodeTree(d, nil)
		if err == nil && n == nil {
			t.Error("nil tree without error")
		}
	})
}

func FuzzDecodeBoxesResp(f *testing.F) {
	seedMutations(f, encodeBoxesResp([]int{0, 2, 5}))
	f.Fuzz(func(t *testing.T, buf []byte) {
		ranks, err := decodeBoxesResp(buf)
		if err == nil && int64(len(ranks)) > int64(len(buf))/8 {
			t.Errorf("accepted %d ranks from %d bytes", len(ranks), len(buf))
		}
	})
}

func FuzzDecodeDataResp(f *testing.F) {
	e := &h5.Encoder{}
	e.PutI64(1)
	encodeBox(e, grid.Box{Min: []int64{0}, Max: []int64{3}})
	e.PutBytes([]byte{1, 2, 3, 4})
	seedMutations(f, e.Buf)
	f.Fuzz(func(t *testing.T, buf []byte) {
		decodeDataResp(buf)
	})
}

func FuzzDecodeDataspace(f *testing.F) {
	sp, err := h5.NewSimpleMax([]int64{8, 8}, []int64{16, 16})
	if err != nil {
		f.Fatal(err)
	}
	sp.SelectBox(h5.SelectSet, grid.Box{Min: []int64{0, 0}, Max: []int64{3, 3}})
	seedMutations(f, h5.MarshalDataspace(sp))
	f.Fuzz(func(t *testing.T, buf []byte) {
		h5.UnmarshalDataspace(buf)
	})
}

func FuzzDecodeDatatype(f *testing.F) {
	compound, err := h5.NewCompound(16,
		h5.Field{Name: "x", Offset: 0, Type: h5.F64},
		h5.Field{Name: "id", Offset: 8, Type: h5.I64},
	)
	if err != nil {
		f.Fatal(err)
	}
	seedMutations(f, h5.MarshalDatatype(compound))
	f.Fuzz(func(t *testing.T, buf []byte) {
		h5.UnmarshalDatatype(buf)
	})
}

func FuzzHandleRequest(f *testing.F) {
	// Valid requests for each opcode, plus mutations: the server-side
	// dispatcher must never panic on what a faulty peer delivers.
	seedMutations(f, encodeMetadataReq("outfile.h5"))
	seedMutations(f, encodeBoxesReq("outfile.h5", "/state/grid", grid.Box{Min: []int64{0, 0}, Max: []int64{7, 7}}))
	sel := h5.NewSimple(8, 8)
	sel.SelectBox(h5.SelectSet, grid.Box{Min: []int64{0, 0}, Max: []int64{3, 3}})
	seedMutations(f, encodeDataReq("outfile.h5", "/state/grid", sel))
	seedMutations(f, encodeDone("outfile.h5"))
	f.Fuzz(func(t *testing.T, buf []byte) {
		vol := NewDistMetadataVOL(nil, nil)
		vol.HandleRequestBytes(buf)
	})
}
