package core

import (
	"fmt"

	"lowfive/h5"
	"lowfive/internal/grid"
)

// Wire protocol between consumer (client) and producer (server) ranks.
// Requests are dispatched by a one-byte opcode; all payloads use the h5
// binary encoder.

const (
	opMetadata   uint8 = iota + 1 // file metadata at open
	opBoxes                       // Alg. 2 lines 4–8: which producers intersect a bbox
	opData                        // Alg. 2 lines 9–14: serialize intersecting data
	opDone                        // consumer finished with a file (no response)
	opDataStream                  // opData answered as a chunked frame stream
)

func encodeBox(e *h5.Encoder, b grid.Box) {
	e.PutI64(int64(b.Dim()))
	for d := range b.Min {
		e.PutI64(b.Min[d])
		e.PutI64(b.Max[d])
	}
}

func decodeBox(d *h5.Decoder) grid.Box {
	nd := d.I64()
	if d.Err != nil || nd < 0 || nd > 64 {
		if d.Err == nil {
			d.Err = fmt.Errorf("lowfive: corrupt box rank %d", nd)
		}
		return grid.Box{}
	}
	b := grid.Box{Min: make([]int64, nd), Max: make([]int64, nd)}
	for k := int64(0); k < nd; k++ {
		b.Min[k] = d.I64()
		b.Max[k] = d.I64()
	}
	return b
}

// --- metadata request ---

func encodeMetadataReq(file string) []byte {
	e := &h5.Encoder{}
	e.PutU8(opMetadata)
	e.PutString(file)
	return e.Buf
}

func encodeMetadataResp(fn *FileNode) []byte {
	e := &h5.Encoder{}
	if fn == nil {
		e.PutU8(0)
		return e.Buf
	}
	e.PutU8(1)
	EncodeTree(e, fn.Node, nil)
	return e.Buf
}

func decodeMetadataResp(buf []byte) (*Node, error) {
	d := &h5.Decoder{Buf: buf}
	if d.U8() == 0 {
		return nil, fmt.Errorf("lowfive: producer does not have the requested file")
	}
	return DecodeTree(d, nil)
}

// --- box (redirect) query ---

func encodeBoxesReq(file, dset string, bb grid.Box) []byte {
	e := &h5.Encoder{}
	e.PutU8(opBoxes)
	e.PutString(file)
	e.PutString(dset)
	encodeBox(e, bb)
	return e.Buf
}

func encodeBoxesResp(ranks []int) []byte {
	e := &h5.Encoder{}
	e.PutI64(int64(len(ranks)))
	for _, r := range ranks {
		e.PutI64(int64(r))
	}
	return e.Buf
}

func decodeBoxesResp(buf []byte) ([]int, error) {
	d := &h5.Decoder{Buf: buf}
	n := d.I64()
	// Each rank entry is 8 bytes; a count the buffer cannot hold is corrupt.
	if d.Err != nil || n < 0 || n > int64(len(buf)-d.Pos)/8 {
		return nil, fmt.Errorf("lowfive: corrupt box-query response")
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.I64())
	}
	return out, d.Err
}

// --- data query ---

func encodeDataReq(file, dset string, sel *h5.Dataspace) []byte {
	e := &h5.Encoder{}
	e.PutU8(opData)
	e.PutString(file)
	e.PutString(dset)
	h5.EncodeDataspace(e, sel)
	return e.Buf
}

// encodeDataStreamReq is encodeDataReq with the streaming opcode: the same
// query, answered as a sequence of bounded frames instead of one body.
func encodeDataStreamReq(file, dset string, sel *h5.Dataspace) []byte {
	e := &h5.Encoder{}
	e.PutU8(opDataStream)
	e.PutString(file)
	e.PutString(dset)
	h5.EncodeDataspace(e, sel)
	return e.Buf
}

func decodeDataResp(buf []byte) ([]Piece, error) {
	d := &h5.Decoder{Buf: buf}
	n := d.I64()
	// Each piece costs at least 16 bytes (box rank + data length prefix).
	if d.Err != nil || n < 0 || n > int64(len(buf)-d.Pos)/16 {
		return nil, fmt.Errorf("lowfive: corrupt data response")
	}
	out := make([]Piece, 0, n)
	for i := int64(0); i < n; i++ {
		p := Piece{Box: decodeBox(d), Data: d.Bytes()}
		if d.Err != nil {
			return nil, fmt.Errorf("lowfive: corrupt data response: %v", d.Err)
		}
		out = append(out, p)
	}
	return out, nil
}

// --- done notification ---

func encodeDone(file string) []byte {
	e := &h5.Encoder{}
	e.PutU8(opDone)
	e.PutString(file)
	return e.Buf
}

// AssemblePieces builds the fileSel-selected region (packed in selection
// order) from rectangular pieces, applying them in order.
func AssemblePieces(fileSel *h5.Dataspace, pieces []Piece, elemSize int) []byte {
	dst := make([]byte, fileSel.NumSelected()*int64(elemSize))
	AssemblePiecesInto(dst, fileSel, pieces, elemSize)
	return dst
}

// AssemblePiecesInto scatters the pieces into dst, which holds the packed
// fileSel selection, avoiding an intermediate buffer.
func AssemblePiecesInto(dst []byte, fileSel *h5.Dataspace, pieces []Piece, elemSize int) {
	es := int64(elemSize)
	base := int64(0)
	for _, rb := range fileSel.SelectionBoxes() {
		for _, p := range pieces {
			region := p.Box.Intersect(rb)
			if !region.IsEmpty() {
				grid.CopyRegion(dst[base*es:], rb, p.Data, p.Box, region, elemSize)
			}
		}
		base += rb.NumPoints()
	}
}

// HandleRequestBytes is a test hook: it dispatches a raw request buffer as
// the serve loop would, exercising the decoder paths.
func (v *DistMetadataVOL) HandleRequestBytes(req []byte) (resp []byte, isDone bool) {
	resp, isDone, _, _ = v.handleRequest(req)
	return resp, isDone
}
