package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"lowfive/internal/buf"
)

// admitInOrder occupies the single slot, parks n waiters (enqueued one at a
// time so FIFO order is known), then dispatches them one release at a time
// and returns the tenants in admission order.
func admitInOrder(t *testing.T, a *admission, enqueue []string) []string {
	t.Helper()
	if err := a.acquire("seed"); err != nil {
		t.Fatalf("seed acquire: %v", err)
	}
	admitted := make(chan string, len(enqueue))
	var wg sync.WaitGroup
	for i, tenant := range enqueue {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			if err := a.acquire(tenant); err != nil {
				t.Errorf("acquire %s: %v", tenant, err)
				return
			}
			admitted <- tenant
		}(tenant)
		// Wait until this waiter is queued before enqueueing the next, so
		// arrival order is deterministic.
		for want := int64(i + 1); a.stats().queued < want; {
			time.Sleep(50 * time.Microsecond)
		}
	}
	order := make([]string, 0, len(enqueue))
	for range enqueue {
		a.release() // frees the slot held on behalf of the previous admit
		order = append(order, <-admitted)
	}
	a.release()
	wg.Wait()
	a.quiesce()
	return order
}

// TestAdmissionWeightedShares: with weights 4:1 and both queues full, the
// stride scheduler admits tenants in exact weight proportion.
func TestAdmissionWeightedShares(t *testing.T) {
	a := newAdmission(1, time.Minute, 64, map[string]int{"a": 4, "b": 1}, nil, nil)
	var enqueue []string
	for i := 0; i < 8; i++ {
		enqueue = append(enqueue, "a")
	}
	for i := 0; i < 2; i++ {
		enqueue = append(enqueue, "b")
	}
	order := admitInOrder(t, a, enqueue)
	// Every prefix must respect the 4:1 share within one stride: after k
	// admissions tenant b has seen at least floor(k/5)-1 and at most
	// ceil(k/5)+1 slots.
	bs := 0
	for k, tenant := range order {
		if tenant == "b" {
			bs++
		}
		lo, hi := (k+1)/5-1, (k+1+4)/5+1
		if bs < lo || bs > hi {
			t.Fatalf("after %d admissions tenant b had %d slots, want [%d,%d] (order %v)",
				k+1, bs, lo, hi, order)
		}
	}
	if bs != 2 {
		t.Fatalf("tenant b admitted %d times, want 2 (order %v)", bs, order)
	}
}

// TestAdmissionFIFOWithinTenant: one tenant's waiters are admitted in
// arrival order.
func TestAdmissionFIFOWithinTenant(t *testing.T) {
	a := newAdmission(1, time.Minute, 64, nil, nil, nil)
	enqueue := []string{"t0", "t1", "t2", "t3", "t4", "t5"}
	// Distinct names would defeat the point — use one tenant but recover
	// arrival order through a side channel: park waiters with one shared
	// tenant and tag admissions by arrival index.
	if err := a.acquire("seed"); err != nil {
		t.Fatalf("seed acquire: %v", err)
	}
	admitted := make(chan int, len(enqueue))
	var wg sync.WaitGroup
	for i := range enqueue {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := a.acquire("solo"); err != nil {
				t.Errorf("acquire %d: %v", i, err)
				return
			}
			admitted <- i
		}(i)
		for want := int64(i + 1); a.stats().queued < want; {
			time.Sleep(50 * time.Microsecond)
		}
	}
	for want := 0; want < len(enqueue); want++ {
		a.release()
		if got := <-admitted; got != want {
			t.Fatalf("admission %d was arrival %d, want FIFO", want, got)
		}
	}
	a.release()
	wg.Wait()
	a.quiesce()
}

// TestAdmissionQueueDeadline: a waiter that cannot be dispatched before the
// queue deadline is shed with the typed error carrying the deadline as its
// RetryAfter hint.
func TestAdmissionQueueDeadline(t *testing.T) {
	const deadline = 10 * time.Millisecond
	a := newAdmission(1, deadline, 64, nil, nil, nil)
	if err := a.acquire("holder"); err != nil {
		t.Fatalf("holder acquire: %v", err)
	}
	start := time.Now()
	err := a.acquire("waiter")
	var ov *ErrOverloaded
	if !errors.As(err, &ov) {
		t.Fatalf("acquire = %v, want *ErrOverloaded", err)
	}
	if ov.Reason != "queue-deadline" {
		t.Fatalf("Reason = %q, want queue-deadline", ov.Reason)
	}
	if ov.RetryAfter != deadline {
		t.Fatalf("RetryAfter = %v, want %v", ov.RetryAfter, deadline)
	}
	if elapsed := time.Since(start); elapsed < deadline {
		t.Fatalf("shed after %v, before the %v deadline", elapsed, deadline)
	}
	a.release()
	a.quiesce()
	st := a.stats()
	if st.shed != 1 || st.admitted != 1 {
		t.Fatalf("stats = %+v, want 1 shed / 1 admitted", st)
	}
}

// TestAdmissionQueueFull: a request arriving to a full tenant queue is shed
// immediately, and other tenants' queues are unaffected.
func TestAdmissionQueueFull(t *testing.T) {
	a := newAdmission(1, time.Minute, 1, nil, nil, nil)
	if err := a.acquire("holder"); err != nil {
		t.Fatalf("holder acquire: %v", err)
	}
	done := make(chan error, 2)
	go func() { done <- a.acquire("greedy") }() // fills greedy's queue
	for a.stats().queued < 1 {
		time.Sleep(50 * time.Microsecond)
	}
	start := time.Now()
	err := a.acquire("greedy")
	var ov *ErrOverloaded
	if !errors.As(err, &ov) || ov.Reason != "queue-full" {
		t.Fatalf("acquire on full queue = %v, want queue-full ErrOverloaded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("queue-full shed was not immediate")
	}
	// Another tenant still queues fine.
	go func() { done <- a.acquire("other") }()
	for a.stats().queued < 2 {
		time.Sleep(50 * time.Microsecond)
	}
	a.release()
	if err := <-done; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	a.release()
	if err := <-done; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	a.release()
	a.quiesce()
}

// TestAdmissionPoolPressure: the chunk pool's fill couples into admission —
// past the squeeze threshold the concurrency bound halves, past the shed
// threshold requests are refused outright, and the byte budget is never
// planned past.
func TestAdmissionPoolPressure(t *testing.T) {
	pool := buf.NewPool(64, 10)
	a := newAdmission(4, 10*time.Millisecond, 8, nil, pool, nil)

	// 70% outstanding: bound halves 4 -> 2.
	var held []*buf.Chunk
	for i := 0; i < 7; i++ {
		held = append(held, pool.Get())
	}
	if got := a.effectiveMax(); got != 2 {
		t.Fatalf("effectiveMax at 70%% pressure = %d, want 2", got)
	}
	if err := a.acquire("t"); err != nil {
		t.Fatalf("first acquire under squeeze: %v", err)
	}
	if err := a.acquire("t"); err != nil {
		t.Fatalf("second acquire under squeeze: %v", err)
	}
	// Third must queue (bound is 2) and shed on its deadline.
	err := a.acquire("t")
	var ov *ErrOverloaded
	if !errors.As(err, &ov) || ov.Reason != "queue-deadline" {
		t.Fatalf("third acquire under squeeze = %v, want queue-deadline shed", err)
	}

	// 90% outstanding: shed outright before touching any queue.
	held = append(held, pool.Get(), pool.Get())
	err = a.acquire("t")
	if !errors.As(err, &ov) || ov.Reason != "pool-pressure" {
		t.Fatalf("acquire at 90%% pressure = %v, want pool-pressure shed", err)
	}

	for _, c := range held {
		c.Release()
	}
	if got := a.effectiveMax(); got != 4 {
		t.Fatalf("effectiveMax after drain = %d, want 4", got)
	}
	a.release()
	a.release()
	a.quiesce()
}

// TestAdmissionConcurrentStorm hammers the controller from many tenants at
// once (run with -race -count=2 in CI): every acquire resolves as admitted
// or shed, the books balance, and quiesce observes a drained controller.
func TestAdmissionConcurrentStorm(t *testing.T) {
	a := newAdmission(2, 2*time.Millisecond, 4,
		map[string]int{"a": 4, "b": 2, "c": 1}, nil, nil)
	var wg sync.WaitGroup
	var mu sync.Mutex
	admitted, shed := 0, 0
	for _, tenant := range []string{"a", "b", "c"} {
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					err := a.acquire(tenant)
					if err == nil {
						time.Sleep(100 * time.Microsecond) // hold the slot
						a.release()
						mu.Lock()
						admitted++
						mu.Unlock()
						continue
					}
					var ov *ErrOverloaded
					if !errors.As(err, &ov) {
						t.Errorf("acquire: %v", err)
						return
					}
					mu.Lock()
					shed++
					mu.Unlock()
				}
			}(tenant)
		}
	}
	wg.Wait()
	a.quiesce()
	st := a.stats()
	if int(st.admitted) != admitted || int(st.shed) != shed {
		t.Fatalf("controller books (admitted %d, shed %d) != caller books (%d, %d)",
			st.admitted, st.shed, admitted, shed)
	}
	if admitted+shed != 3*8*25 {
		t.Fatalf("admitted %d + shed %d != %d issued", admitted, shed, 3*8*25)
	}
	if shed == 0 {
		t.Fatal("storm shed nothing; contention knobs too loose for the test to mean anything")
	}
}
