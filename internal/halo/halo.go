// Package halo implements structured ghost-cell exchange for
// block-decomposed fields — the neighbor communication every stencil-based
// simulation performs between steps (in the real stack this is DIY's ghost
// exchange). Each rank owns one block of a regular decomposition; Exchange
// returns the rank's field enlarged by a ghost layer filled with the
// neighbors' boundary data.
package halo

import (
	"fmt"

	"lowfive/h5"
	"lowfive/internal/grid"
	"lowfive/mpi"
)

const tagHalo = 61

// Exchange grows this rank's block by width cells (clipped to the domain),
// returning the ghosted box and a row-major buffer over it with the
// interior copied from field and the ghost cells received from the owning
// ranks. blocks lists every rank's block (blocks[task.Rank()] must equal
// the caller's block); fields are float32 with one value per cell.
func Exchange(task *mpi.Comm, dims []int64, blocks []grid.Box, field []float32, width int) (grid.Box, []float32, error) {
	if width < 0 {
		return grid.Box{}, nil, fmt.Errorf("halo: negative width %d", width)
	}
	me := task.Rank()
	mine := blocks[me]
	if !mine.IsEmpty() && int64(len(field)) != mine.NumPoints() {
		return grid.Box{}, nil, fmt.Errorf("halo: field has %d cells, block has %d", len(field), mine.NumPoints())
	}
	ghost := grow(mine, dims, width)
	out := make([]float32, ghost.NumPoints())
	if !mine.IsEmpty() {
		grid.CopyRegion(h5.Bytes(out), ghost, h5.Bytes(field), mine, mine, 4)
	}
	if width == 0 || mine.IsEmpty() {
		return ghost, out, nil
	}

	// For every other rank: what I need from them (their block ∩ my ghost)
	// and what they need from me (my block ∩ their ghost). Both sides
	// compute the same intersections, so no negotiation round is needed.
	type xfer struct {
		rank   int
		region grid.Box
	}
	var sends, recvs []xfer
	for r, b := range blocks {
		if r == me || b.IsEmpty() {
			continue
		}
		if in := b.Intersect(ghost); !in.IsEmpty() {
			recvs = append(recvs, xfer{r, in})
		}
		if out := mine.Intersect(grow(b, dims, width)); !out.IsEmpty() {
			sends = append(sends, xfer{r, out})
		}
	}
	for _, s := range sends {
		buf := grid.GatherRegion(make([]byte, 0, s.region.NumPoints()*4), h5.Bytes(field), mine, s.region, 4)
		task.Send(s.rank, tagHalo, buf)
	}
	for _, rv := range recvs {
		buf, _ := task.Recv(rv.rank, tagHalo)
		if int64(len(buf)) != rv.region.NumPoints()*4 {
			return grid.Box{}, nil, fmt.Errorf("halo: neighbor %d sent %d bytes for %d cells",
				rv.rank, len(buf), rv.region.NumPoints())
		}
		grid.ScatterRegion(h5.Bytes(out), ghost, buf, rv.region, 4)
	}
	return ghost, out, nil
}

// grow expands a box by w in every direction, clipped to the domain.
func grow(b grid.Box, dims []int64, w int) grid.Box {
	if b.IsEmpty() {
		return b
	}
	g := b.Clone()
	for d := range g.Min {
		g.Min[d] -= int64(w)
		if g.Min[d] < 0 {
			g.Min[d] = 0
		}
		g.Max[d] += int64(w)
		if g.Max[d] > dims[d]-1 {
			g.Max[d] = dims[d] - 1
		}
	}
	return g
}
