package halo

import (
	"testing"

	"lowfive/internal/grid"
	"lowfive/mpi"
)

func blocksOf(dims []int64, n int) []grid.Box {
	dc := grid.CommonDecomposition(dims, n)
	out := make([]grid.Box, n)
	for i := range out {
		out[i] = dc.Block(i)
	}
	return out
}

// fill sets cell values to their global linear index.
func fill(dims []int64, b grid.Box) []float32 {
	f := make([]float32, b.NumPoints())
	i := 0
	b.Runs(dims, func(off, n int64) {
		for k := int64(0); k < n; k++ {
			f[i] = float32(off + k)
			i++
		}
	})
	return f
}

func TestExchangeFillsGhosts(t *testing.T) {
	dims := []int64{8, 8, 8}
	for _, n := range []int{2, 4, 8} {
		n := n
		blocks := blocksOf(dims, n)
		err := mpi.Run(n, func(c *mpi.Comm) {
			mine := blocks[c.Rank()]
			field := fill(dims, mine)
			ghost, out, err := Exchange(c, dims, blocks, field, 1)
			if err != nil {
				t.Error(err)
				return
			}
			// Every cell of the ghosted box must hold its global index.
			i := 0
			bad := false
			ghost.Runs(dims, func(off, cnt int64) {
				for k := int64(0); k < cnt; k++ {
					if !bad && out[i] != float32(off+k) {
						t.Errorf("n=%d rank %d: ghost cell %d = %v want %d", n, c.Rank(), i, out[i], off+k)
						bad = true
					}
					i++
				}
			})
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestExchangeWidthZeroAndValidation(t *testing.T) {
	dims := []int64{4, 4, 4}
	blocks := blocksOf(dims, 2)
	err := mpi.Run(2, func(c *mpi.Comm) {
		mine := blocks[c.Rank()]
		field := fill(dims, mine)
		ghost, out, err := Exchange(c, dims, blocks, field, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if !ghost.Equal(mine) || int64(len(out)) != mine.NumPoints() {
			t.Error("width 0 should return the block unchanged")
		}
		if _, _, err := Exchange(c, dims, blocks, field, -1); err == nil {
			t.Error("negative width should fail")
		}
		if _, _, err := Exchange(c, dims, blocks, field[:1], 1); err == nil {
			t.Error("wrong field size should fail")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeWideGhost(t *testing.T) {
	// Width 2 ghosts spanning across more than the face-adjacent neighbor.
	dims := []int64{6, 6, 6}
	blocks := blocksOf(dims, 6)
	err := mpi.Run(6, func(c *mpi.Comm) {
		mine := blocks[c.Rank()]
		field := fill(dims, mine)
		ghost, out, err := Exchange(c, dims, blocks, field, 2)
		if err != nil {
			t.Error(err)
			return
		}
		i := 0
		ok := true
		ghost.Runs(dims, func(off, cnt int64) {
			for k := int64(0); k < cnt; k++ {
				if ok && out[i] != float32(off+k) {
					t.Errorf("rank %d: cell %d = %v want %d", c.Rank(), i, out[i], off+k)
					ok = false
				}
				i++
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}
