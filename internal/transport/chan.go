package transport

// Chan is the in-proc engine: ranks are goroutines in one process and a
// frame is "delivered" by handing its pointer to the destination rank's
// mailbox. This is the channel-based delivery extracted from the original
// mpi runtime, preserved bit-for-bit: the cost model charges the sending
// goroutine before the frame becomes visible (so trees and pipelines keep
// their modeled scaling behaviour), delivery is synchronous, and the
// payload moves by reference with zero copies.
type Chan struct {
	deliver DeliverFunc
	cost    func(bytes int)
}

// NewChan builds the in-proc engine. deliver enqueues a frame at its
// destination mailbox (the caller keeps abort/failure semantics there);
// cost, when non-nil, is the α–β injection charge paid by the sending
// goroutine before delivery.
func NewChan(deliver DeliverFunc, cost func(bytes int)) *Chan {
	return &Chan{deliver: deliver, cost: cost}
}

// Send charges the cost model and delivers f synchronously. It never
// fails: in-proc destination liveness is the caller's concern (the mpi
// layer drops frames to crashed ranks before calling Send).
func (t *Chan) Send(dst int, f *Frame) error {
	if t.cost != nil {
		t.cost(len(f.Data))
	}
	t.deliver(dst, f)
	return nil
}

// Close is a no-op; the in-proc engine owns no resources.
func (t *Chan) Close() error { return nil }
