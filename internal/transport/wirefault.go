package transport

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Wire-level fault injection: the sock engine's analogue of mpi.FaultPlan,
// applied below the frame codec instead of above it. A WirePlan wraps this
// rank's outgoing data connections in a net.Conn whose Write path can
// silently discard a frame, flip bytes, stall, pace to a bandwidth, or
// hard-close the connection mid-frame — the failure modes of a real
// network, landing on real sockets. Faults are seeded and deterministic
// given the same sequence of writes; they perturb only the write path (the
// sender's view), mirroring the chan engine's sender-side fault plans.
//
// Unlike mpi.FaultPlan, which exempts internal traffic by tag, a wire
// fault cannot tell a collective's frame from an application payload —
// everything on the connection is perturbed, including the session
// handshake. That is the point: the recovery machinery (reconnect with
// backoff, sequence-numbered resend) has to keep every layer above the
// codec correct, not just the payloads a plan chose to target.

// WireAction selects what a matched WireRule does to a write.
type WireAction int

const (
	// WireDelay stalls the write for Delay before letting it through:
	// a congested or distant link.
	WireDelay WireAction = iota
	// WireDrop silently discards the write while reporting success to the
	// sender — bytes lost in flight with no error anywhere. Only the
	// receiver's sequence gap (or the sender's ack-progress timeout)
	// reveals it.
	WireDrop
	// WireCorrupt flips 1–4 bytes of the write at seeded positions. The
	// frame CRC (or a sequence mismatch, if the flip lands on the seq
	// prefix) catches it on the receiving side.
	WireCorrupt
	// WireReset writes a prefix of the buffer, then hard-closes the
	// connection: a mid-frame RST. The receiver sees a truncated frame,
	// the sender a write error.
	WireReset
	// WirePartition opens a time window, starting at the rule's first
	// armed match, during which every matching write is silently
	// discarded; the link heals after Duration.
	WirePartition
	// WireThrottle paces matching writes to Bandwidth bytes/second,
	// serializing them FIFO on the link. Unlike the chan engine's
	// modeled FaultThrottle, a throttled wire backpressures the sender —
	// which is what a real slow link does.
	WireThrottle
)

// String names the action for logs and test output.
func (a WireAction) String() string {
	switch a {
	case WireDelay:
		return "delay"
	case WireDrop:
		return "drop"
	case WireCorrupt:
		return "corrupt"
	case WireReset:
		return "reset"
	case WirePartition:
		return "partition"
	case WireThrottle:
		return "throttle"
	default:
		return fmt.Sprintf("WireAction(%d)", int(a))
	}
}

// WireAnyRank matches any rank in WireRule.Src.
const WireAnyRank = -1

// WireDst encodes a destination rank for WireRule.Dst (0 means any peer),
// mirroring mpi.DstRank.
func WireDst(rank int) int { return rank + 1 }

// WireRule scopes one fault to a slice of the wire traffic. All fields are
// JSON-serializable so a plan can ride the child-process environment to
// spawned rank processes.
type WireRule struct {
	// Action is what happens to a matched write.
	Action WireAction `json:"action"`
	// Src is the rank whose outgoing writes this rule perturbs
	// (WireAnyRank matches all). Each process applies only the rules
	// scoped to its own rank.
	Src int `json:"src"`
	// Dst restricts the rule to connections toward one peer,
	// WireDst-encoded; 0 matches any peer.
	Dst int `json:"dst,omitempty"`
	// After lets that many matching writes pass clean before the rule
	// arms.
	After int `json:"after,omitempty"`
	// Count caps how many times the rule fires; 0 is unlimited. Bounding
	// Count is what makes a lossy plan deterministically survivable.
	Count int `json:"count,omitempty"`
	// Prob fires the armed rule with this probability per match; 0 means
	// always.
	Prob float64 `json:"prob,omitempty"`
	// Delay is the stall of a WireDelay.
	Delay time.Duration `json:"delay,omitempty"`
	// Duration is the width of a WirePartition window.
	Duration time.Duration `json:"duration,omitempty"`
	// Bandwidth is the bytes/second pace of a WireThrottle.
	Bandwidth float64 `json:"bandwidth,omitempty"`
}

// WirePlan is a seeded set of wire fault rules for one run. The zero plan
// (or a nil pointer) injects nothing.
type WirePlan struct {
	// Seed derives every random decision; runs with equal seeds and equal
	// write sequences fault identically. Mixed with the local rank so
	// each process draws an independent stream.
	Seed int64 `json:"seed"`
	// Rules are matched in order; the first armed match decides the
	// write's fate.
	Rules []WireRule `json:"rules,omitempty"`
}

// wireFaults is the per-process runtime of a WirePlan: the subset of rules
// scoped to this rank, their match/fire counters, partition windows and
// throttle pacing, and the rank's private random stream.
type wireFaults struct {
	rank int

	mu        sync.Mutex
	rules     []WireRule
	rng       uint64 // xorshift64 stream, seeded from (plan.Seed, rank)
	seen      []int  // armed-match counter per rule
	fired     []int  // firing counter per rule
	partStart []time.Time
	freeAt    []time.Time // per-rule throttle pacing: when the link is free
}

// newWireFaults compiles the plan for one rank, keeping only rules scoped
// to it. Returns nil when nothing can match, so the fast path stays a nil
// check.
func newWireFaults(plan *WirePlan, rank int) *wireFaults {
	if plan == nil {
		return nil
	}
	var rules []WireRule
	for _, r := range plan.Rules {
		if r.Src == WireAnyRank || r.Src == rank {
			rules = append(rules, r)
		}
	}
	if len(rules) == 0 {
		return nil
	}
	seed := uint64(plan.Seed)*0x9e3779b97f4a7c15 ^ uint64(rank+1)*0xbf58476d1ce4e5b9
	if seed == 0 {
		seed = 1
	}
	return &wireFaults{
		rank:      rank,
		rules:     rules,
		rng:       seed,
		seen:      make([]int, len(rules)),
		fired:     make([]int, len(rules)),
		partStart: make([]time.Time, len(rules)),
		freeAt:    make([]time.Time, len(rules)),
	}
}

// wrap interposes the fault layer on one outgoing connection toward dst.
func (w *wireFaults) wrap(conn net.Conn, dst int) net.Conn {
	if w == nil {
		return conn
	}
	for _, r := range w.rules {
		if r.Dst == 0 || r.Dst == WireDst(dst) {
			return &faultConn{Conn: conn, w: w, dst: dst}
		}
	}
	return conn
}

// rand draws the next value of this plan's xorshift64 stream. Caller holds
// w.mu.
func (w *wireFaults) rand() uint64 {
	x := w.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng = x
	return x
}

// randFloat draws uniform [0,1). Caller holds w.mu.
func (w *wireFaults) randFloat() float64 {
	return float64(w.rand()>>11) / float64(1<<53)
}

// wireVerdict is one write's fate: the action to apply (or -1 for none)
// and any precomputed parameters, resolved under w.mu so the sleep/write
// happens outside the lock.
type wireVerdict struct {
	action WireAction // -1: pass through
	sleep  time.Duration
	flips  []int // corrupt positions
}

// decide matches one write of n bytes toward dst against the rules. The
// first armed match wins, mirroring mpi's faultState.decide ordering.
func (w *wireFaults) decide(dst, n int) wireVerdict {
	w.mu.Lock()
	defer w.mu.Unlock()
	now := time.Now()
	for i := range w.rules {
		r := &w.rules[i]
		if r.Dst != 0 && r.Dst != WireDst(dst) {
			continue
		}
		// An open partition window swallows every matching write,
		// regardless of After/Count/Prob — those gate when the window
		// opens, not what it does.
		if r.Action == WirePartition && !w.partStart[i].IsZero() {
			if now.Sub(w.partStart[i]) < r.Duration {
				return wireVerdict{action: WireDrop}
			}
			continue // healed
		}
		w.seen[i]++
		if w.seen[i] <= r.After {
			continue
		}
		if r.Count > 0 && w.fired[i] >= r.Count {
			continue
		}
		if r.Prob > 0 && w.randFloat() >= r.Prob {
			continue
		}
		w.fired[i]++
		switch r.Action {
		case WirePartition:
			w.partStart[i] = now
			return wireVerdict{action: WireDrop}
		case WireThrottle:
			if r.Bandwidth <= 0 {
				continue
			}
			cost := time.Duration(float64(n) / r.Bandwidth * float64(time.Second))
			start := now
			if w.freeAt[i].After(start) {
				start = w.freeAt[i]
			}
			w.freeAt[i] = start.Add(cost)
			return wireVerdict{action: WireThrottle, sleep: w.freeAt[i].Sub(now)}
		case WireCorrupt:
			nflips := int(w.rand()%4) + 1
			flips := make([]int, nflips)
			for f := range flips {
				flips[f] = int(w.rand() % uint64(n))
			}
			return wireVerdict{action: WireCorrupt, flips: flips}
		case WireDelay:
			return wireVerdict{action: WireDelay, sleep: r.Delay}
		default:
			return wireVerdict{action: r.Action}
		}
	}
	return wireVerdict{action: -1}
}

// faultConn applies a wireFaults runtime to one connection's writes. Reads
// and closes pass through untouched.
type faultConn struct {
	net.Conn
	w   *wireFaults
	dst int
}

// errWireReset is the write error a WireReset surfaces to the sender.
var errWireReset = fmt.Errorf("transport: wire fault: connection reset mid-frame")

func (fc *faultConn) Write(b []byte) (int, error) {
	if len(b) == 0 {
		return fc.Conn.Write(b)
	}
	v := fc.w.decide(fc.dst, len(b))
	switch v.action {
	case WireDrop:
		// Report success, deliver nothing: the bytes die on the wire.
		return len(b), nil
	case WireDelay, WireThrottle:
		if v.sleep > 0 {
			time.Sleep(v.sleep)
		}
		return fc.Conn.Write(b)
	case WireCorrupt:
		c := make([]byte, len(b))
		copy(c, b)
		for _, p := range v.flips {
			c[p] ^= 0x2a
		}
		return fc.Conn.Write(c)
	case WireReset:
		// Half the frame escapes, then the connection dies under it.
		n, _ := fc.Conn.Write(b[:len(b)/2])
		fc.Conn.Close()
		return n, errWireReset
	default:
		return fc.Conn.Write(b)
	}
}
