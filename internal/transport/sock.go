package transport

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// helloCommID marks the handshake frame a dialer sends first on every
// data connection: WorldSrc carries the dialer's rank and the payload its
// incarnation. The mpi layer never uses communicator ID 0, so hello
// frames cannot be confused with traffic.
const helloCommID = 0

// coordDialTimeout bounds how long DialSock retries reaching the
// coordinator before giving up (the coordinator normally exists before
// any rank process is spawned).
const coordDialTimeout = 10 * time.Second

// SockConfig configures one rank's endpoint of a sock-transport world.
type SockConfig struct {
	// Network is "tcp" (loopback TCP) or "unix" (Unix domain sockets,
	// listen paths under the temp dir).
	Network string
	// Coord is the coordinator address to rendezvous at.
	Coord string
	// Rank and Size are this process's world rank and the world size.
	Rank, Size int
	// Inc is this rank's incarnation: 0 on first launch, bumped by the
	// supervisor on each restart so peers can tell a respawn from the
	// process it replaced.
	Inc uint32
	// Deliver hands each inbound frame to the local runtime. Called from
	// one reader goroutine per peer connection.
	Deliver DeliverFunc
	// OnPeerDeath, if set, is called at most once per (peer, incarnation)
	// when that peer becomes unreachable.
	OnPeerDeath func(rank int)
	// OnPeerRejoin, if set, is called when a dead peer rejoins with a new
	// incarnation and address.
	OnPeerRejoin func(rank int)
}

// SockStats is a snapshot of one endpoint's data-plane traffic.
type SockStats struct {
	SentFrames, SentBytes int64
	RecvFrames, RecvBytes int64
}

// Sock is the real-socket engine: this process is one world rank, peers
// are other processes found through the Coordinator. Each direction of
// each pair uses one connection (the sender dials, writes under a per-peer
// mutex and never reads; the acceptor reads and never writes), which
// preserves the pairwise FIFO ordering the mailbox matching relies on.
type Sock struct {
	cfg   SockConfig
	ln    net.Listener
	coord net.Conn
	addr  string

	peers  []sockPeer
	closed atomic.Bool
	wg     sync.WaitGroup

	sentFrames, sentBytes atomic.Int64
	recvFrames, recvBytes atomic.Int64
}

type sockPeer struct {
	mu   sync.Mutex
	addr string
	inc  uint32
	dead bool
	conn net.Conn // outgoing connection, dialed lazily, write-only
}

// DialSock listens for peers, joins the coordinator and blocks until the
// whole world has joined (the world barrier), then returns a ready
// endpoint. The returned engine's reader goroutines call cfg.Deliver.
func DialSock(cfg SockConfig) (*Sock, error) {
	if cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("transport: rank %d out of range for world size %d", cfg.Rank, cfg.Size)
	}
	if cfg.Deliver == nil {
		return nil, fmt.Errorf("transport: SockConfig.Deliver is required")
	}
	ln, err := listenSock(cfg)
	if err != nil {
		return nil, err
	}
	s := &Sock{cfg: cfg, ln: ln, peers: make([]sockPeer, cfg.Size)}
	s.addr = ln.Addr().String()

	coord, err := dialCoord(cfg.Network, cfg.Coord)
	if err != nil {
		ln.Close()
		return nil, err
	}
	s.coord = coord
	enc := json.NewEncoder(coord)
	if err := enc.Encode(coordMsg{Op: "join", Rank: cfg.Rank, Addr: s.addr, Inc: cfg.Inc}); err != nil {
		s.Close()
		return nil, fmt.Errorf("transport: coordinator join: %w", err)
	}

	// World barrier: block until the coordinator has every rank.
	dec := json.NewDecoder(coord)
	var world coordMsg
	for {
		if err := dec.Decode(&world); err != nil {
			s.Close()
			return nil, fmt.Errorf("transport: waiting for world: %w", err)
		}
		if world.Op == "world" {
			break
		}
	}
	if world.Size != cfg.Size || len(world.Addrs) != cfg.Size {
		s.Close()
		return nil, fmt.Errorf("transport: coordinator world size %d, want %d", world.Size, cfg.Size)
	}
	for i := range s.peers {
		s.peers[i].addr = world.Addrs[i]
		s.peers[i].inc = world.Incs[i]
		if world.Dead != nil {
			s.peers[i].dead = world.Dead[i]
		}
	}

	// A rejoiner's world snapshot may already contain dead peers; report
	// them so the local runtime starts out with the same failure view the
	// rest of the world has. Collected before the loops start so nothing
	// mutates peer state concurrently.
	var initiallyDead []int
	for i := range s.peers {
		if s.peers[i].dead && i != cfg.Rank {
			initiallyDead = append(initiallyDead, i)
		}
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.coordLoop(dec)
	for _, i := range initiallyDead {
		s.notifyDeath(i)
	}
	return s, nil
}

// listenSock opens this rank's data-plane listener.
func listenSock(cfg SockConfig) (net.Listener, error) {
	switch cfg.Network {
	case "tcp":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("transport: listen: %w", err)
		}
		return ln, nil
	case "unix":
		// Short path: Unix socket paths cap out around 104 bytes.
		path := filepath.Join(os.TempDir(),
			fmt.Sprintf("lf%d-%d.%d.sock", os.Getpid(), cfg.Rank, cfg.Inc))
		os.Remove(path)
		ln, err := net.Listen("unix", path)
		if err != nil {
			return nil, fmt.Errorf("transport: listen: %w", err)
		}
		return ln, nil
	default:
		return nil, fmt.Errorf("transport: unknown network %q (want tcp or unix)", cfg.Network)
	}
}

// dialCoord dials the coordinator, retrying briefly: a freshly spawned
// rank process can beat the coordinator's listener by a scheduling hair.
func dialCoord(network, addr string) (net.Conn, error) {
	deadline := time.Now().Add(coordDialTimeout)
	wait := 5 * time.Millisecond
	for {
		conn, err := net.Dial(network, addr)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: dial coordinator %s: %w", addr, err)
		}
		time.Sleep(wait)
		if wait < 200*time.Millisecond {
			wait *= 2
		}
	}
}

// Addr returns the address this rank's listener advertises to peers.
func (s *Sock) Addr() string { return s.addr }

// Stats snapshots this endpoint's frame/byte counters.
func (s *Sock) Stats() SockStats {
	return SockStats{
		SentFrames: s.sentFrames.Load(), SentBytes: s.sentBytes.Load(),
		RecvFrames: s.recvFrames.Load(), RecvBytes: s.recvBytes.Load(),
	}
}

// Send ships f to world rank dst over the reused outgoing connection,
// dialing it on first use. A dead or unreachable peer returns a
// *PeerDeadError; the frame is then not consumed.
func (s *Sock) Send(dst int, f *Frame) error {
	if dst < 0 || dst >= len(s.peers) {
		return &PeerDeadError{Rank: dst, Err: fmt.Errorf("rank out of range")}
	}
	if dst == s.cfg.Rank {
		// Self-send stays in-process; no loopback connection.
		s.sentFrames.Add(1)
		s.sentBytes.Add(int64(len(f.Data)))
		s.recvFrames.Add(1)
		s.recvBytes.Add(int64(len(f.Data)))
		s.deliverInbound(f)
		return nil
	}
	p := &s.peers[dst]
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		return &PeerDeadError{Rank: dst}
	}
	if p.conn == nil {
		conn, err := s.dialPeer(p)
		if err != nil {
			p.dead = true
			p.mu.Unlock()
			s.notifyDeath(dst)
			return &PeerDeadError{Rank: dst, Err: err}
		}
		p.conn = conn
	}
	// Write while holding p.mu: one in-flight frame per connection keeps
	// frames whole and per-peer ordering FIFO.
	err := WriteFrame(p.conn, f)
	if err != nil {
		p.conn.Close()
		p.conn = nil
		p.dead = true
		p.mu.Unlock()
		s.notifyDeath(dst)
		return &PeerDeadError{Rank: dst, Err: err}
	}
	p.mu.Unlock()
	s.sentFrames.Add(1)
	s.sentBytes.Add(int64(len(f.Data)))
	return nil
}

// dialPeer opens the outgoing connection to p and sends the hello frame
// identifying this rank. Caller holds p.mu.
func (s *Sock) dialPeer(p *sockPeer) (net.Conn, error) {
	conn, err := net.Dial(s.cfg.Network, p.addr)
	if err != nil {
		return nil, err
	}
	hello := Frame{
		CommID:   helloCommID,
		WorldSrc: s.cfg.Rank,
		Src:      s.cfg.Rank,
		Data:     binary.LittleEndian.AppendUint32(nil, s.cfg.Inc),
	}
	if err := WriteFrame(conn, &hello); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// Close shuts the endpoint down: listener, coordinator registration and
// every peer connection. Safe to call more than once.
func (s *Sock) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	err := s.ln.Close()
	if s.coord != nil {
		s.coord.Close()
	}
	for i := range s.peers {
		p := &s.peers[i]
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
			p.conn = nil
		}
		p.mu.Unlock()
	}
	s.wg.Wait()
	return err
}

// acceptLoop admits inbound peer connections and spawns a reader per
// connection.
func (s *Sock) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.readLoop(conn)
	}
}

// readLoop drains one inbound connection: a hello identifying the peer,
// then data frames into Deliver. A read error or EOF means the peer's
// process is gone — unless the hello's incarnation is stale, in which
// case a respawn already superseded this connection and its death is
// old news.
func (s *Sock) readLoop(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	hello, err := ReadFrame(conn)
	if err != nil || hello.CommID != helloCommID ||
		hello.WorldSrc < 0 || hello.WorldSrc >= len(s.peers) || len(hello.Data) != 4 {
		return
	}
	peer := hello.WorldSrc
	peerInc := binary.LittleEndian.Uint32(hello.Data)
	for {
		f, err := ReadFrame(conn)
		if err != nil {
			if s.closed.Load() {
				return
			}
			// io.EOF: peer closed (process exit). Anything else — including
			// a typed decode error from a corrupt stream — also means this
			// connection is unusable; FIFO framing cannot be resynced.
			s.peerConnDied(peer, peerInc)
			return
		}
		s.recvFrames.Add(1)
		s.recvBytes.Add(int64(len(f.Data)))
		s.deliverInbound(&f)
	}
}

func (s *Sock) deliverInbound(f *Frame) {
	s.cfg.Deliver(s.cfg.Rank, f)
}

// peerConnDied marks a peer dead after its inbound connection broke,
// unless the connection belonged to an older incarnation than the one we
// currently know (the coordinator's update won the race).
func (s *Sock) peerConnDied(rank int, inc uint32) {
	p := &s.peers[rank]
	p.mu.Lock()
	if inc < p.inc || p.dead {
		p.mu.Unlock()
		return
	}
	p.dead = true
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
	p.mu.Unlock()
	s.notifyDeath(rank)
}

// coordLoop consumes coordinator broadcasts after the world barrier:
// deaths and rejoins. The coordinator connection dropping (parent
// shutting down) just ends the loop.
func (s *Sock) coordLoop(dec *json.Decoder) {
	defer s.wg.Done()
	for {
		var msg coordMsg
		if err := dec.Decode(&msg); err != nil {
			return
		}
		switch msg.Op {
		case "death":
			if msg.Rank >= 0 && msg.Rank < len(s.peers) && msg.Rank != s.cfg.Rank {
				s.peerConnDied(msg.Rank, s.peerInc(msg.Rank))
			}
		case "update":
			if msg.Rank >= 0 && msg.Rank < len(s.peers) && msg.Rank != s.cfg.Rank {
				s.peerRejoined(msg.Rank, msg.Addr, msg.Inc)
			}
		}
	}
}

func (s *Sock) peerInc(rank int) uint32 {
	p := &s.peers[rank]
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inc
}

// peerRejoined installs a respawned peer's new address/incarnation and
// revives it for senders.
func (s *Sock) peerRejoined(rank int, addr string, inc uint32) {
	p := &s.peers[rank]
	p.mu.Lock()
	if inc < p.inc {
		p.mu.Unlock()
		return // stale broadcast
	}
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
	wasDead := p.dead
	p.addr, p.inc, p.dead = addr, inc, false
	p.mu.Unlock()
	if wasDead && s.cfg.OnPeerRejoin != nil {
		s.cfg.OnPeerRejoin(rank)
	}
}

func (s *Sock) notifyDeath(rank int) {
	if s.closed.Load() {
		return
	}
	if s.cfg.OnPeerDeath != nil {
		s.cfg.OnPeerDeath(rank)
	}
}
