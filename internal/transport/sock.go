package transport

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"lowfive/internal/backoff"
)

// helloCommID marks a session-control frame (hello, resume, ack) on a data
// connection; Tag selects which. The mpi layer never uses communicator ID
// 0, so control frames cannot be confused with traffic.
const helloCommID = 0

// Control-frame kinds, carried in the Tag field of a helloCommID frame.
const (
	// ctlHello opens a session: dialer→acceptor, Data = incarnation (u32)
	// + dial attempt (u64).
	ctlHello = 0
	// ctlResume answers a hello: acceptor→dialer, Data = the next data
	// sequence number this side expects for (peer, incarnation). The
	// dialer resends every pending frame from there.
	ctlResume = 1
	// ctlAck flows acceptor→dialer periodically, Data = cumulative
	// receive sequence; the dialer drops acknowledged frames from its
	// retransmit queue.
	ctlAck = 2
)

// coordDialTimeout bounds how long DialSock retries reaching the
// coordinator before giving up (the coordinator normally exists before
// any rank process is spawned).
const coordDialTimeout = 10 * time.Second

// SockConfig configures one rank's endpoint of a sock-transport world.
type SockConfig struct {
	// Network is "tcp" (loopback TCP) or "unix" (Unix domain sockets,
	// listen paths under the temp dir).
	Network string
	// Coord is the coordinator address to rendezvous at.
	Coord string
	// Rank and Size are this process's world rank and the world size.
	Rank, Size int
	// Inc is this rank's incarnation: 0 on first launch, bumped by the
	// supervisor on each restart so peers can tell a respawn from the
	// process it replaced.
	Inc uint32
	// Deliver hands each inbound frame to the local runtime. Called from
	// one reader goroutine per peer connection.
	Deliver DeliverFunc
	// OnPeerDeath, if set, is called at most once per (peer, incarnation)
	// when that peer becomes unreachable.
	OnPeerDeath func(rank int)
	// OnPeerRejoin, if set, is called when a dead peer rejoins with a new
	// incarnation and address.
	OnPeerRejoin func(rank int)
	// OnRecovery, if set, observes the recovery machinery: connection
	// tears, redials, re-established sessions and resent frames. Used to
	// feed metrics counters and the flight recorder.
	OnRecovery func(ev RecoveryEvent)

	// WirePlan, if set, injects seeded wire-level faults into this rank's
	// outgoing connections (tests and fault sweeps).
	WirePlan *WirePlan

	// JoinTimeout bounds the wait at the world barrier; a world that
	// does not form in time surfaces as *JoinTimeoutError instead of a
	// hang. Default 60s.
	JoinTimeout time.Duration
	// WriteTimeout bounds every data-plane write; a write that cannot
	// complete tears the connection and enters recovery. Default 10s.
	WriteTimeout time.Duration
	// HandshakeTimeout bounds each step of the hello/resume session
	// handshake (and the acceptor's wait for a hello). Default 2s.
	HandshakeTimeout time.Duration
	// ReconnectTimeout is the total budget of one recovery episode:
	// redials with jittered exponential backoff until a session is
	// re-established, after which the peer is declared dead. Default 15s.
	ReconnectTimeout time.Duration
	// RetransmitTimeout is how long pending (unacknowledged) frames may
	// sit without ack progress before the connection is declared suspect
	// and torn for a resync — the recovery for frames a faulty wire
	// silently swallowed. Default 1s.
	RetransmitTimeout time.Duration
	// HeartbeatInterval paces the client→coordinator pings that let the
	// coordinator evict hung rank processes. Default 2s.
	HeartbeatInterval time.Duration
	// AckInterval paces the receiver's cumulative acks. Default 25ms.
	AckInterval time.Duration
	// DrainTimeout bounds Close's wait for pending frames to be flushed
	// and acknowledged before connections come down, so a rank exiting
	// right after its last Send does not strand queued frames. Default 5s.
	DrainTimeout time.Duration
}

// fill installs the documented defaults.
func (cfg *SockConfig) fill() {
	if cfg.JoinTimeout <= 0 {
		cfg.JoinTimeout = 60 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 2 * time.Second
	}
	if cfg.ReconnectTimeout <= 0 {
		cfg.ReconnectTimeout = 15 * time.Second
	}
	if cfg.RetransmitTimeout <= 0 {
		cfg.RetransmitTimeout = time.Second
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 2 * time.Second
	}
	if cfg.AckInterval <= 0 {
		cfg.AckInterval = 25 * time.Millisecond
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
}

// RecoveryEvent is one observation from the reconnect/resend machinery.
type RecoveryEvent struct {
	// Peer is the world rank of the connection's far side.
	Peer int
	// Kind is "tear" (a live connection broke or went suspect), "redial"
	// (one reconnect attempt started), "reconnect" (a session was
	// re-established), "resend" (Frames pending frames were retransmitted
	// on a fresh session), or "peer-unreachable" (the reconnect budget
	// ran dry and the peer was declared dead).
	Kind string
	// Frames counts resent frames for "resend" events.
	Frames int
	// Err is what broke, for "tear" and "peer-unreachable".
	Err error
}

// JoinTimeoutError reports a world that did not form within JoinTimeout:
// some rank process never reached the coordinator (or hung before the
// barrier released). Typed so launchers can tell a stuck world from a
// network error.
type JoinTimeoutError struct {
	// Rank is the local rank that gave up waiting.
	Rank int
	// Timeout is how long it waited.
	Timeout time.Duration
}

func (e *JoinTimeoutError) Error() string {
	return fmt.Sprintf("transport: rank %d: world did not form within %s (a rank process is missing or hung)", e.Rank, e.Timeout)
}

// SockStats is a snapshot of one endpoint's data-plane traffic and its
// recovery activity.
type SockStats struct {
	// Data-plane counters: frames/bytes handed to the transport for
	// sending (counted once, resends excluded) and frames/bytes delivered
	// to the local runtime (duplicates excluded).
	SentFrames, SentBytes int64
	RecvFrames, RecvBytes int64
	// Reconnects counts re-established sessions after a tear. Redials
	// counts individual recovery dial attempts, successful or not. The
	// lazy first connection to a peer counts as neither. ResentFrames/
	// ResentBytes count retransmissions of frames a torn connection had
	// already carried but not delivered.
	Reconnects, Redials       int64
	ResentFrames, ResentBytes int64
}

// Sock is the real-socket engine: this process is one world rank, peers
// are other processes found through the Coordinator.
//
// Each direction of each pair uses one dialed session at a time: the
// sender dials, writes sequence-prefixed frames under a per-peer mutex
// (preserving the pairwise FIFO ordering the mailbox matching relies on),
// and reads only the acceptor's acks; the acceptor reads data frames and
// writes only acks. Every data frame carries a per-(peer,incarnation)
// sequence number and stays in the sender's retransmit queue until the
// acceptor's cumulative ack covers it, so a torn connection — reset
// mid-frame, a CRC-corrupt stream, a silently dropped frame, a partition —
// recovers by redialing (jittered exponential backoff) and resending from
// the acceptor's resume point instead of killing the rank. Peer death is
// the coordinator's call, not a connection error's.
type Sock struct {
	cfg    SockConfig
	faults *wireFaults
	ln     net.Listener
	coord  net.Conn
	addr   string

	peers  []sockPeer
	recv   []recvState
	closed atomic.Bool
	stop   chan struct{}

	// spawnMu serializes goroutine spawns from untracked callers (Send's
	// reconnect kick) against Close's wg.Wait.
	spawnMu sync.RWMutex
	wg      sync.WaitGroup

	sentFrames, sentBytes     atomic.Int64
	recvFrames, recvBytes     atomic.Int64
	reconnects, redials       atomic.Int64
	resentFrames, resentBytes atomic.Int64
}

// wireEntry is one pending (not yet acknowledged) data frame: its
// sequence number, its encoded wire bytes, and its payload size for
// stats. sent records whether a transmission was ever attempted, so a
// session flush can tell a retransmission (counts as resent) from the
// first transmission of a frame queued while the link was down (does
// not).
type wireEntry struct {
	seq  uint64
	buf  []byte
	n    int
	sent bool
}

// sockPeer is the sender-side state toward one peer.
type sockPeer struct {
	mu   sync.Mutex
	addr string
	inc  uint32
	dead bool
	conn net.Conn // current outgoing session, nil between sessions

	attempt      uint64 // dial-session counter, monotone per peer
	nextSeq      uint64 // sequence of the next new data frame
	acked        uint64 // cumulative ack: peer holds every seq < acked
	queue        []wireEntry
	reconnecting bool
	everConn     bool      // a session existed before (reconnect counting)
	lastProgress time.Time // last ack advance or completed write
}

// recvState is the acceptor-side state for one peer: which session is
// live and where its contiguous delivered stream ends.
type recvState struct {
	mu      sync.Mutex
	inc     uint32
	attempt uint64
	conn    net.Conn
	seq     uint64 // next expected data sequence for (peer, inc)
}

// DialSock listens for peers, joins the coordinator and blocks until the
// whole world has joined (the world barrier), then returns a ready
// endpoint. The returned engine's reader goroutines call cfg.Deliver. A
// world that does not form within cfg.JoinTimeout returns
// *JoinTimeoutError.
func DialSock(cfg SockConfig) (*Sock, error) {
	if cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("transport: rank %d out of range for world size %d", cfg.Rank, cfg.Size)
	}
	if cfg.Deliver == nil {
		return nil, fmt.Errorf("transport: SockConfig.Deliver is required")
	}
	cfg.fill()
	ln, err := listenSock(cfg)
	if err != nil {
		return nil, err
	}
	s := &Sock{
		cfg:    cfg,
		faults: newWireFaults(cfg.WirePlan, cfg.Rank),
		ln:     ln,
		peers:  make([]sockPeer, cfg.Size),
		recv:   make([]recvState, cfg.Size),
		stop:   make(chan struct{}),
	}
	s.addr = ln.Addr().String()

	coord, err := dialCoord(cfg.Network, cfg.Coord)
	if err != nil {
		ln.Close()
		return nil, err
	}
	s.coord = coord
	enc := json.NewEncoder(coord)
	if err := enc.Encode(coordMsg{Op: "join", Rank: cfg.Rank, Addr: s.addr, Inc: cfg.Inc}); err != nil {
		s.Close()
		return nil, fmt.Errorf("transport: coordinator join: %w", err)
	}
	// Heartbeat from the moment the join is sent: the coordinator evicts
	// silent members, and a rank waiting at the world barrier must not
	// read as hung.
	s.wg.Add(1)
	go s.heartbeatLoop(enc)

	// World barrier: block until the coordinator has every rank, but not
	// past the join timeout — a missing or hung rank process must surface
	// as a typed error, not an eternal hang.
	coord.SetReadDeadline(time.Now().Add(cfg.JoinTimeout))
	dec := json.NewDecoder(coord)
	var world coordMsg
	for {
		if err := dec.Decode(&world); err != nil {
			s.Close()
			if isTimeout(err) {
				return nil, &JoinTimeoutError{Rank: cfg.Rank, Timeout: cfg.JoinTimeout}
			}
			return nil, fmt.Errorf("transport: waiting for world: %w", err)
		}
		if world.Op == "world" {
			break
		}
	}
	coord.SetReadDeadline(time.Time{})
	if world.Size != cfg.Size || len(world.Addrs) != cfg.Size {
		s.Close()
		return nil, fmt.Errorf("transport: coordinator world size %d, want %d", world.Size, cfg.Size)
	}
	now := time.Now()
	for i := range s.peers {
		s.peers[i].addr = world.Addrs[i]
		s.peers[i].inc = world.Incs[i]
		s.peers[i].lastProgress = now
		if world.Dead != nil {
			s.peers[i].dead = world.Dead[i]
		}
	}

	// A rejoiner's world snapshot may already contain dead peers; report
	// them so the local runtime starts out with the same failure view the
	// rest of the world has. Collected before the loops start so nothing
	// mutates peer state concurrently.
	var initiallyDead []int
	for i := range s.peers {
		if s.peers[i].dead && i != cfg.Rank {
			initiallyDead = append(initiallyDead, i)
		}
	}
	s.wg.Add(3)
	go s.acceptLoop()
	go s.coordLoop(dec)
	go s.retransmitMonitor()
	for _, i := range initiallyDead {
		s.notifyDeath(i)
	}
	return s, nil
}

// isTimeout reports whether err is a deadline expiry.
func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// listenSock opens this rank's data-plane listener.
func listenSock(cfg SockConfig) (net.Listener, error) {
	switch cfg.Network {
	case "tcp":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("transport: listen: %w", err)
		}
		return ln, nil
	case "unix":
		// Short path: Unix socket paths cap out around 104 bytes.
		path := filepath.Join(os.TempDir(),
			fmt.Sprintf("lf%d-%d.%d.sock", os.Getpid(), cfg.Rank, cfg.Inc))
		os.Remove(path)
		ln, err := net.Listen("unix", path)
		if err != nil {
			return nil, fmt.Errorf("transport: listen: %w", err)
		}
		return ln, nil
	default:
		return nil, fmt.Errorf("transport: unknown network %q (want tcp or unix)", cfg.Network)
	}
}

// dialCoord dials the coordinator, retrying briefly: a freshly spawned
// rank process can beat the coordinator's listener by a scheduling hair.
func dialCoord(network, addr string) (net.Conn, error) {
	deadline := time.Now().Add(coordDialTimeout)
	wait := 5 * time.Millisecond
	for {
		conn, err := net.Dial(network, addr)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: dial coordinator %s: %w", addr, err)
		}
		time.Sleep(wait)
		if wait < 200*time.Millisecond {
			wait *= 2
		}
	}
}

// heartbeatLoop pings the coordinator so it can tell a hung rank process
// from a live one. Exits on shutdown or the first failed write (the
// coordinator connection is gone; coordLoop notices the same).
func (s *Sock) heartbeatLoop(enc *json.Encoder) {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		s.coord.SetWriteDeadline(time.Now().Add(s.cfg.HeartbeatInterval))
		if err := enc.Encode(coordMsg{Op: "ping", Rank: s.cfg.Rank}); err != nil {
			return
		}
	}
}

// Addr returns the address this rank's listener advertises to peers.
func (s *Sock) Addr() string { return s.addr }

// Stats snapshots this endpoint's frame/byte/recovery counters.
func (s *Sock) Stats() SockStats {
	return SockStats{
		SentFrames: s.sentFrames.Load(), SentBytes: s.sentBytes.Load(),
		RecvFrames: s.recvFrames.Load(), RecvBytes: s.recvBytes.Load(),
		Reconnects: s.reconnects.Load(), Redials: s.redials.Load(),
		ResentFrames: s.resentFrames.Load(), ResentBytes: s.resentBytes.Load(),
	}
}

// recovery reports one recovery observation to the configured hook.
func (s *Sock) recovery(peer int, kind string, frames int, err error) {
	if s.cfg.OnRecovery != nil {
		s.cfg.OnRecovery(RecoveryEvent{Peer: peer, Kind: kind, Frames: frames, Err: err})
	}
}

// appendWire appends one wire message — an 8-byte little-endian sequence
// prefix, then the frame encoding — to dst.
func appendWire(dst []byte, seq uint64, f *Frame) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	return AppendFrame(dst, f)
}

// readWire reads one wire message from r. io.EOF at a message boundary is
// clean; a stream dying inside the prefix wraps ErrTruncatedFrame like a
// death inside the frame would.
func readWire(r io.Reader) (seq uint64, f Frame, err error) {
	var pre [8]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("%w: stream ended inside sequence prefix", ErrTruncatedFrame)
		}
		return 0, Frame{}, err
	}
	f, err = ReadFrame(r)
	if err != nil {
		return 0, Frame{}, err
	}
	return binary.LittleEndian.Uint64(pre[:]), f, nil
}

// ctlFrame builds one session-control frame.
func (s *Sock) ctlFrame(kind int64, data []byte) Frame {
	return Frame{CommID: helloCommID, Tag: int(kind), WorldSrc: s.cfg.Rank, Src: s.cfg.Rank, Data: data}
}

// Send ships f to world rank dst. The frame is assigned the next sequence
// number toward dst, queued for retransmission until acknowledged, and
// written inline when a session is up; with no session (or a mid-write
// tear) it stays queued and background recovery dials, resumes and
// resends. Send fails only for a peer already declared dead — transient
// connection trouble is the transport's problem, not the caller's.
func (s *Sock) Send(dst int, f *Frame) error {
	if dst < 0 || dst >= len(s.peers) {
		return &PeerDeadError{Rank: dst, Err: fmt.Errorf("rank out of range")}
	}
	if dst == s.cfg.Rank {
		// Self-send stays in-process; no loopback connection.
		s.sentFrames.Add(1)
		s.sentBytes.Add(int64(len(f.Data)))
		s.recvFrames.Add(1)
		s.recvBytes.Add(int64(len(f.Data)))
		s.deliverInbound(f)
		return nil
	}
	p := &s.peers[dst]
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		return &PeerDeadError{Rank: dst}
	}
	e := wireEntry{seq: p.nextSeq, buf: appendWire(nil, p.nextSeq, f), n: len(f.Data)}
	p.nextSeq++
	p.queue = append(p.queue, e)
	s.sentFrames.Add(1)
	s.sentBytes.Add(int64(e.n))
	switch {
	case p.conn != nil && !p.reconnecting:
		// Write while holding p.mu: one in-flight frame per connection
		// keeps frames whole and per-peer ordering FIFO.
		p.queue[len(p.queue)-1].sent = true
		p.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if _, err := p.conn.Write(e.buf); err != nil {
			s.tearLocked(p, dst, err)
		} else {
			p.lastProgress = time.Now()
		}
	case p.conn == nil && !p.reconnecting:
		s.startReconnectLocked(p, dst)
	}
	p.mu.Unlock()
	return nil
}

// tearLocked closes a suspect session and kicks background recovery.
// Caller holds p.mu.
func (s *Sock) tearLocked(p *sockPeer, dst int, err error) {
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
	s.recovery(dst, "tear", 0, err)
	s.startReconnectLocked(p, dst)
}

// startReconnectLocked spawns the single-flight reconnect loop for one
// peer. Caller holds p.mu.
func (s *Sock) startReconnectLocked(p *sockPeer, dst int) {
	if p.dead || p.reconnecting {
		return
	}
	s.spawnMu.RLock()
	if s.closed.Load() {
		s.spawnMu.RUnlock()
		return
	}
	p.reconnecting = true
	s.wg.Add(1)
	s.spawnMu.RUnlock()
	go s.reconnectLoop(dst, p.inc)
}

// reconnectLoop (re)establishes the session toward dst for one peer
// incarnation: dial, handshake, resume-resend — retrying with jittered
// exponential backoff until the reconnect budget runs dry, at which point
// the peer is declared dead. Exactly one loop runs per peer at a time
// (p.reconnecting).
func (s *Sock) reconnectLoop(dst int, inc uint32) {
	defer s.wg.Done()
	p := &s.peers[dst]
	bo := backoff.New(5*time.Millisecond, 250*time.Millisecond, uint64(dst)+1)
	deadline := time.Now().Add(s.cfg.ReconnectTimeout)
	for {
		p.mu.Lock()
		if s.closed.Load() || p.dead || p.inc != inc {
			if p.inc == inc {
				p.reconnecting = false
			}
			p.mu.Unlock()
			return
		}
		addr := p.addr
		p.attempt++
		attempt := p.attempt
		redial := p.everConn
		p.mu.Unlock()

		if redial {
			// Only dials that replace a previously live session count as
			// recovery; the lazy first connection to a peer does not.
			s.redials.Add(1)
			s.recovery(dst, "redial", 0, nil)
		}
		conn, resume, err := s.dialSession(dst, addr, inc, attempt)
		if err == nil {
			installed, retry := s.installSession(dst, inc, attempt, conn, resume)
			if installed {
				return
			}
			conn.Close()
			if !retry {
				return
			}
			err = fmt.Errorf("transport: session flush failed")
		}

		d := bo.Next(deadline)
		if d <= 0 {
			// Budget exhausted: the peer is unreachable. This is the
			// sender-side death verdict; the coordinator's broadcast (if
			// the peer really is gone) usually lands first.
			p.mu.Lock()
			mark := !p.dead && p.inc == inc
			if mark {
				p.dead = true
				p.queue = nil
			}
			if p.inc == inc {
				p.reconnecting = false
			}
			p.mu.Unlock()
			if mark {
				s.recovery(dst, "peer-unreachable", 0, err)
				s.notifyDeath(dst)
			}
			return
		}
		select {
		case <-s.stop:
			p.mu.Lock()
			if p.inc == inc {
				p.reconnecting = false
			}
			p.mu.Unlock()
			return
		case <-time.After(d):
		}
	}
}

// dialSession opens one session toward a peer: dial (through the wire
// fault layer, faults being sender-scoped), send the hello, await the
// resume answer. Every step is deadline-bounded.
func (s *Sock) dialSession(dst int, addr string, inc uint32, attempt uint64) (net.Conn, uint64, error) {
	raw, err := net.Dial(s.cfg.Network, addr)
	if err != nil {
		return nil, 0, err
	}
	conn := s.faults.wrap(raw, dst)
	data := binary.LittleEndian.AppendUint32(nil, inc)
	data = binary.LittleEndian.AppendUint64(data, attempt)
	hello := s.ctlFrame(ctlHello, data)
	conn.SetWriteDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	if _, err := conn.Write(appendWire(nil, 0, &hello)); err != nil {
		conn.Close()
		return nil, 0, err
	}
	conn.SetReadDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	_, resp, err := readWire(conn)
	if err != nil {
		conn.Close()
		return nil, 0, err
	}
	if resp.CommID != helloCommID || resp.Tag != ctlResume || len(resp.Data) != 8 {
		conn.Close()
		return nil, 0, fmt.Errorf("transport: bad session resume from rank %d", dst)
	}
	conn.SetReadDeadline(time.Time{})
	conn.SetWriteDeadline(time.Time{})
	return conn, binary.LittleEndian.Uint64(resp.Data), nil
}

// installSession makes a freshly handshaked connection the live session:
// trims the retransmit queue to the acceptor's resume point, resends
// everything still pending, installs the conn and starts its ack reader.
// Returns installed=false with retry=true when the flush failed (the loop
// should back off and redial) and retry=false when the session is moot
// (shutdown, death, rejoin, or a newer dial superseded this one).
func (s *Sock) installSession(dst int, inc uint32, attempt uint64, conn net.Conn, resume uint64) (installed, retry bool) {
	p := &s.peers[dst]
	p.mu.Lock()
	defer p.mu.Unlock()
	if s.closed.Load() || p.dead || p.inc != inc || p.attempt != attempt {
		if p.inc == inc && p.attempt == attempt {
			p.reconnecting = false
		}
		return false, false
	}
	// Everything below the resume point reached the peer in a previous
	// session; drop it. (A resume above nextSeq would mean a protocol
	// bug; clamp defensively.)
	if resume > p.nextSeq {
		resume = p.nextSeq
	}
	trimQueue(p, resume)
	if resume > p.acked {
		p.acked = resume
	}
	resent := 0
	var resentB int64
	for i := range p.queue {
		e := &p.queue[i]
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if _, err := conn.Write(e.buf); err != nil {
			return false, true
		}
		if e.sent {
			// A frame the torn session had already carried: this write is
			// the retransmission the stats and flight recorder track.
			resent++
			resentB += int64(e.n)
		}
		e.sent = true
	}
	conn.SetWriteDeadline(time.Time{})
	if resent > 0 {
		s.resentFrames.Add(int64(resent))
		s.resentBytes.Add(resentB)
		s.recovery(dst, "resend", resent, nil)
	}
	p.conn = conn
	p.reconnecting = false
	p.lastProgress = time.Now()
	if p.everConn {
		s.reconnects.Add(1)
		s.recovery(dst, "reconnect", 0, nil)
	}
	p.everConn = true
	s.wg.Add(1)
	go s.ackLoop(dst, inc, conn)
	return true, false
}

// trimQueue drops every entry below ack. Caller holds p.mu.
func trimQueue(p *sockPeer, ack uint64) {
	i := 0
	for i < len(p.queue) && p.queue[i].seq < ack {
		i++
	}
	if i == 0 {
		return
	}
	n := copy(p.queue, p.queue[i:])
	for j := n; j < len(p.queue); j++ {
		p.queue[j] = wireEntry{}
	}
	p.queue = p.queue[:n]
	if n == 0 {
		p.queue = nil
	}
}

// ackLoop is the dialer's read side of one session: it consumes the
// acceptor's cumulative acks (trimming the retransmit queue) and doubles
// as half-open detection — a dead read is how the write side learns a
// quiet connection is gone without waiting to write into it.
func (s *Sock) ackLoop(dst int, inc uint32, conn net.Conn) {
	defer s.wg.Done()
	p := &s.peers[dst]
	for {
		_, f, err := readWire(conn)
		if err != nil {
			p.mu.Lock()
			if p.conn == conn {
				p.conn = nil
				if !s.closed.Load() && !p.dead && p.inc == inc && len(p.queue) > 0 {
					// Frames pending: recover now. With an empty queue the
					// next Send redials lazily.
					s.tearLocked(p, dst, err)
				}
			}
			p.mu.Unlock()
			conn.Close()
			return
		}
		if f.CommID != helloCommID || f.Tag != ctlAck || len(f.Data) != 8 {
			continue
		}
		ack := binary.LittleEndian.Uint64(f.Data)
		p.mu.Lock()
		if p.inc == inc && ack > p.acked {
			p.acked = ack
			trimQueue(p, ack)
			p.lastProgress = time.Now()
		}
		p.mu.Unlock()
	}
}

// retransmitMonitor watches for sessions that stopped making ack progress
// while frames are pending — the signature of a wire that silently ate a
// frame (drop, partition) — and tears them so recovery resyncs via the
// resume handshake.
func (s *Sock) retransmitMonitor() {
	defer s.wg.Done()
	tick := s.cfg.RetransmitTimeout / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		now := time.Now()
		for dst := range s.peers {
			if dst == s.cfg.Rank {
				continue
			}
			p := &s.peers[dst]
			p.mu.Lock()
			if !p.dead && p.conn != nil && !p.reconnecting && len(p.queue) > 0 &&
				now.Sub(p.lastProgress) > s.cfg.RetransmitTimeout {
				s.tearLocked(p, dst, errAckStall)
			}
			p.mu.Unlock()
		}
	}
}

// errAckStall is the tear reason of a retransmit-timeout resync.
var errAckStall = errors.New("transport: no ack progress within the retransmit timeout")

// drain blocks until every live peer's retransmit queue is empty (all
// pending frames flushed and acknowledged) or the drain budget runs out.
// Without it a rank exiting right after its last Send would close the
// socket under frames still queued for a session that is not up yet, and
// a clean exit would read as frame loss to its peers.
func (s *Sock) drain() {
	deadline := time.Now().Add(s.cfg.DrainTimeout)
	for time.Now().Before(deadline) {
		pending := false
		for i := range s.peers {
			p := &s.peers[i]
			p.mu.Lock()
			if !p.dead && len(p.queue) > 0 {
				pending = true
				// A queue with no session and no recovery in flight
				// would sit forever; kick the dial.
				if p.conn == nil && !p.reconnecting {
					s.startReconnectLocked(p, i)
				}
			}
			p.mu.Unlock()
		}
		if !pending {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Close shuts the endpoint down: listener, coordinator registration and
// every peer connection, after draining pending frames. Safe to call
// more than once.
func (s *Sock) Close() error {
	if s.closed.Load() {
		return nil
	}
	s.drain()
	s.spawnMu.Lock()
	already := s.closed.Swap(true)
	s.spawnMu.Unlock()
	if already {
		return nil
	}
	close(s.stop)
	err := s.ln.Close()
	if s.coord != nil {
		s.coord.Close()
	}
	for i := range s.peers {
		p := &s.peers[i]
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
			p.conn = nil
		}
		p.mu.Unlock()
	}
	for i := range s.recv {
		r := &s.recv[i]
		r.mu.Lock()
		if r.conn != nil {
			r.conn.Close()
			r.conn = nil
		}
		r.mu.Unlock()
	}
	s.wg.Wait()
	return err
}

// acceptLoop admits inbound peer connections and spawns a reader per
// connection.
func (s *Sock) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.readLoop(conn)
	}
}

// readLoop drains one inbound session: a hello identifying the peer and
// its dial attempt, the resume answer, then sequence-checked data frames
// into Deliver, with cumulative acks flowing back. A broken inbound
// stream — EOF, a truncated frame, a CRC-corrupt frame, a sequence gap —
// is no longer the peer's death: this side parks at its resume point and
// the sender redials. Death is the coordinator's verdict alone.
func (s *Sock) readLoop(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	_, hello, err := readWire(conn)
	if err != nil || hello.CommID != helloCommID || hello.Tag != ctlHello ||
		hello.WorldSrc < 0 || hello.WorldSrc >= len(s.peers) || len(hello.Data) != 12 {
		return
	}
	conn.SetReadDeadline(time.Time{})
	peer := hello.WorldSrc
	inc := binary.LittleEndian.Uint32(hello.Data)
	attempt := binary.LittleEndian.Uint64(hello.Data[4:])

	r := &s.recv[peer]
	r.mu.Lock()
	if inc < r.inc || (inc == r.inc && attempt <= r.attempt) {
		// A stale dial: a newer session already superseded it.
		r.mu.Unlock()
		return
	}
	if inc > r.inc {
		// A respawned peer starts a fresh sequence space.
		r.inc = inc
		r.seq = 0
	}
	if r.conn != nil {
		r.conn.Close()
	}
	r.conn = conn
	r.attempt = attempt
	resume := r.seq
	r.mu.Unlock()

	resp := s.ctlFrame(ctlResume, binary.LittleEndian.AppendUint64(nil, resume))
	conn.SetWriteDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	if _, err := conn.Write(appendWire(nil, 0, &resp)); err != nil {
		s.detachRecv(r, conn)
		return
	}
	conn.SetWriteDeadline(time.Time{})
	s.wg.Add(1)
	go s.ackFlusher(r, conn)

	for {
		seq, f, err := readWire(conn)
		if err != nil {
			s.detachRecv(r, conn)
			return
		}
		if f.CommID == helloCommID {
			continue // stray control frame; never consumes a sequence
		}
		r.mu.Lock()
		if r.conn != conn {
			r.mu.Unlock()
			return // superseded mid-read; the new session owns the stream
		}
		switch {
		case seq == r.seq:
			r.seq++
			s.recvFrames.Add(1)
			s.recvBytes.Add(int64(len(f.Data)))
			// Deliver under r.mu: across a session switch the resume
			// snapshot cannot overtake an in-flight delivery, so per-peer
			// FIFO holds across reconnects.
			s.deliverInbound(&f)
			r.mu.Unlock()
		case seq < r.seq:
			r.mu.Unlock() // a duplicate of an already-delivered frame
		default:
			// Sequence gap: the wire silently swallowed a frame. Tear the
			// session; the sender's recovery resends from our resume point.
			r.conn = nil
			r.mu.Unlock()
			return
		}
	}
}

// detachRecv clears the live-session pointer if conn still holds it.
func (s *Sock) detachRecv(r *recvState, conn net.Conn) {
	r.mu.Lock()
	if r.conn == conn {
		r.conn = nil
	}
	r.mu.Unlock()
}

// ackFlusher periodically writes the cumulative receive sequence back to
// the dialer. Acks are idempotent and cumulative, so pacing them is purely
// a bandwidth/latency trade.
func (s *Sock) ackFlusher(r *recvState, conn net.Conn) {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.AckInterval)
	defer t.Stop()
	var last uint64
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		r.mu.Lock()
		if r.conn != conn {
			r.mu.Unlock()
			return
		}
		cur := r.seq
		r.mu.Unlock()
		if cur == last {
			continue
		}
		ack := s.ctlFrame(ctlAck, binary.LittleEndian.AppendUint64(nil, cur))
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if _, err := conn.Write(appendWire(nil, 0, &ack)); err != nil {
			return
		}
		last = cur
	}
}

func (s *Sock) deliverInbound(f *Frame) {
	s.cfg.Deliver(s.cfg.Rank, f)
}

// peerConnDied marks a peer dead on the coordinator's death broadcast,
// unless the broadcast is stale against a newer incarnation we already
// know about.
func (s *Sock) peerConnDied(rank int, inc uint32) {
	p := &s.peers[rank]
	p.mu.Lock()
	if inc < p.inc || p.dead {
		p.mu.Unlock()
		return
	}
	p.dead = true
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
	p.queue = nil
	p.mu.Unlock()
	s.notifyDeath(rank)
}

// coordLoop consumes coordinator broadcasts after the world barrier:
// deaths and rejoins. The coordinator connection dropping (parent
// shutting down) just ends the loop.
func (s *Sock) coordLoop(dec *json.Decoder) {
	defer s.wg.Done()
	for {
		var msg coordMsg
		if err := dec.Decode(&msg); err != nil {
			return
		}
		switch msg.Op {
		case "death":
			if msg.Rank >= 0 && msg.Rank < len(s.peers) && msg.Rank != s.cfg.Rank {
				s.peerConnDied(msg.Rank, s.peerInc(msg.Rank))
			}
		case "update":
			if msg.Rank >= 0 && msg.Rank < len(s.peers) && msg.Rank != s.cfg.Rank {
				s.peerRejoined(msg.Rank, msg.Addr, msg.Inc)
			}
		}
	}
}

func (s *Sock) peerInc(rank int) uint32 {
	p := &s.peers[rank]
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inc
}

// peerRejoined installs a respawned peer's new address/incarnation and
// revives it for senders, resetting the session sequence space — the
// respawned process re-publishes from scratch under its new incarnation.
func (s *Sock) peerRejoined(rank int, addr string, inc uint32) {
	p := &s.peers[rank]
	p.mu.Lock()
	if inc < p.inc || (inc == p.inc && !p.dead) {
		p.mu.Unlock()
		return // stale broadcast
	}
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
	wasDead := p.dead
	p.addr, p.inc, p.dead = addr, inc, false
	p.reconnecting = false
	p.nextSeq, p.acked = 0, 0
	p.queue = nil
	p.everConn = false
	p.lastProgress = time.Now()
	p.mu.Unlock()
	if wasDead && s.cfg.OnPeerRejoin != nil {
		s.cfg.OnPeerRejoin(rank)
	}
}

func (s *Sock) notifyDeath(rank int) {
	if s.closed.Load() {
		return
	}
	if s.cfg.OnPeerDeath != nil {
		s.cfg.OnPeerDeath(rank)
	}
}
