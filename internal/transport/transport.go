// Package transport is the message-delivery engine beneath the mpi
// package's World: the seam that decides whether ranks are goroutines
// exchanging pointers inside one process or separate OS processes
// exchanging CRC-framed bytes over real sockets.
//
// Two engines implement the Transport interface:
//
//   - Chan: the in-proc channel delivery extracted from the original
//     goroutine runtime. Frames move by reference (zero copies), the α–β
//     cost model charges the sending goroutine before the frame becomes
//     visible, and delivery is synchronous. This is the fast-test and
//     fault-simulation backend.
//   - Sock: every rank is its own OS process. Ranks rendezvous through a
//     tiny Coordinator (rank↔address registry with a world barrier on
//     join), frames travel length-prefixed and CRC32C-checked over TCP or
//     Unix sockets with one reused connection per outgoing peer, and a
//     dead peer surfaces as a typed PeerDeadError that the mpi layer maps
//     onto its existing RankFailedError/supervision machinery.
//
// The split mirrors ADIOS SST's engine architecture: one API above,
// swappable in-memory vs network engines below.
package transport

import "fmt"

// Frame is one transport-level message: the communicator context it was
// sent on, the sender's rank local to that communicator, the sender's
// world rank, the user tag and the payload. It is both the in-memory
// mailbox record of the chan engine and the unit of the sock engine's
// wire format.
type Frame struct {
	// CommID is the communicator context the frame belongs to; receives
	// only match frames of their own communicator.
	CommID uint64
	// Src is the sender's rank local to CommID's group (what Status
	// reports as Source).
	Src int
	// WorldSrc is the sender's world rank: the routing/accounting
	// identity (LinkBytes matrix, peer-death attribution).
	WorldSrc int
	// Tag is the message tag. User tags are non-negative; internal
	// collective traffic uses reserved negative tags, so the wire format
	// carries tags as full signed 64-bit values.
	Tag int
	// Data is the payload. Ownership passes with the frame: the chan
	// engine delivers the very slice the sender passed, the sock engine's
	// receiver allocates a fresh one per frame.
	Data []byte
}

// DeliverFunc hands an inbound frame to the local runtime for world rank
// dst. Implementations must be safe for concurrent use: the sock engine
// calls it from one reader goroutine per peer connection.
type DeliverFunc func(dst int, f *Frame)

// Transport moves frames between world ranks. Send is fire-and-forget
// (MPI buffered-send semantics): a nil error means the frame was accepted
// for delivery, not that it arrived. A non-nil error is always a
// *PeerDeadError naming the unreachable destination; the caller owns the
// frame's payload again and decides whether to release it.
type Transport interface {
	// Send ships f to world rank dst.
	Send(dst int, f *Frame) error
	// Close shuts the engine down and releases its resources (sockets,
	// listeners, coordinator registration). Safe to call more than once.
	Close() error
}

// PeerDeadError is the typed send/dial failure for an unreachable rank:
// its process exited, its connection broke, or the coordinator announced
// its death. The mpi layer maps it onto RankFailedError so receivers
// blocked on the dead peer fail fast.
type PeerDeadError struct {
	// Rank is the world rank that is unreachable.
	Rank int
	// Err is the underlying network error, if any.
	Err error
}

func (e *PeerDeadError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("transport: peer rank %d dead: %v", e.Rank, e.Err)
	}
	return fmt.Sprintf("transport: peer rank %d dead", e.Rank)
}

func (e *PeerDeadError) Unwrap() error { return e.Err }
