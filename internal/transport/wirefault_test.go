package transport

import (
	"testing"
	"time"
)

func TestWireFaultScoping(t *testing.T) {
	plan := &WirePlan{Seed: 1, Rules: []WireRule{
		{Action: WireDrop, Src: 0, Dst: WireDst(1)},
	}}
	if w := newWireFaults(plan, 1); w != nil {
		t.Fatalf("rank 1 compiled a plan scoped to rank 0's writes")
	}
	w := newWireFaults(plan, 0)
	if w == nil {
		t.Fatal("rank 0 got no fault runtime")
	}
	// A connection toward a peer no rule matches must stay unwrapped: the
	// fault layer's fast path is its absence.
	if v := w.decide(2, 100); v.action != -1 {
		t.Fatalf("write toward unmatched dst got action %v", v.action)
	}
	if v := w.decide(1, 100); v.action != WireDrop {
		t.Fatalf("write toward matched dst got action %v, want drop", v.action)
	}
	if newWireFaults(nil, 0) != nil {
		t.Fatal("nil plan compiled to a non-nil runtime")
	}
	if newWireFaults(&WirePlan{Seed: 3}, 0) != nil {
		t.Fatal("empty plan compiled to a non-nil runtime")
	}
}

func TestWireFaultAnyRank(t *testing.T) {
	plan := &WirePlan{Seed: 9, Rules: []WireRule{{Action: WireDrop, Src: WireAnyRank}}}
	for rank := 0; rank < 3; rank++ {
		w := newWireFaults(plan, rank)
		if w == nil {
			t.Fatalf("rank %d: AnyRank rule not compiled", rank)
		}
		if v := w.decide(0, 10); v.action != WireDrop {
			t.Fatalf("rank %d: got %v, want drop", rank, v.action)
		}
	}
}

// After lets writes through before arming, Count caps firings: the gates
// that make a lossy plan deterministically survivable.
func TestWireFaultGating(t *testing.T) {
	w := newWireFaults(&WirePlan{Seed: 2, Rules: []WireRule{
		{Action: WireDrop, Src: 0, After: 3, Count: 2},
	}}, 0)
	var got []WireAction
	for i := 0; i < 8; i++ {
		got = append(got, w.decide(1, 64).action)
	}
	want := []WireAction{-1, -1, -1, WireDrop, WireDrop, -1, -1, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("write %d: action %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

// Equal seeds and equal write sequences must fault identically — the
// whole point of seeding is a reproducible failure schedule.
func TestWireFaultDeterminism(t *testing.T) {
	mk := func() *wireFaults {
		return newWireFaults(&WirePlan{Seed: 77, Rules: []WireRule{
			{Action: WireCorrupt, Src: 0, Prob: 0.3, Count: 5},
		}}, 0)
	}
	a, b := mk(), mk()
	for i := 0; i < 50; i++ {
		va, vb := a.decide(1, 256), b.decide(1, 256)
		if va.action != vb.action || len(va.flips) != len(vb.flips) {
			t.Fatalf("write %d: verdicts diverged: %+v vs %+v", i, va, vb)
		}
		for j := range va.flips {
			if va.flips[j] != vb.flips[j] {
				t.Fatalf("write %d: flip positions diverged", i)
			}
			if va.flips[j] < 0 || va.flips[j] >= 256 {
				t.Fatalf("write %d: flip position %d out of buffer", i, va.flips[j])
			}
		}
	}
	// A different rank draws a different stream from the same plan.
	c := newWireFaults(&WirePlan{Seed: 77, Rules: []WireRule{
		{Action: WireCorrupt, Src: WireAnyRank, Prob: 0.3, Count: 5},
	}}, 1)
	same := true
	a2 := mk()
	for i := 0; i < 50; i++ {
		if a2.decide(1, 256).action != c.decide(0, 256).action {
			same = false
		}
	}
	if same {
		t.Fatal("ranks 0 and 1 drew identical fault schedules from one seed")
	}
}

// A partition is a time window, not a counter: once armed it swallows
// every matching write regardless of the gates, then heals for good.
func TestWirePartitionWindow(t *testing.T) {
	w := newWireFaults(&WirePlan{Seed: 4, Rules: []WireRule{
		{Action: WirePartition, Src: 0, After: 2, Duration: 60 * time.Millisecond},
	}}, 0)
	if v := w.decide(1, 8); v.action != -1 {
		t.Fatalf("write 0: %v, want pass", v.action)
	}
	if v := w.decide(1, 8); v.action != -1 {
		t.Fatalf("write 1: %v, want pass", v.action)
	}
	// Third write arms the window and is the first casualty.
	if v := w.decide(1, 8); v.action != WireDrop {
		t.Fatalf("write 2: %v, want drop (window open)", v.action)
	}
	if v := w.decide(1, 8); v.action != WireDrop {
		t.Fatalf("write 3: %v, want drop (window still open)", v.action)
	}
	time.Sleep(80 * time.Millisecond)
	if v := w.decide(1, 8); v.action != -1 {
		t.Fatalf("post-heal write: %v, want pass", v.action)
	}
}

// Throttled writes serialize on the link: each write's release time stacks
// on the previous one's, like bytes queueing behind a slow NIC.
func TestWireThrottlePacing(t *testing.T) {
	w := newWireFaults(&WirePlan{Seed: 5, Rules: []WireRule{
		{Action: WireThrottle, Src: 0, Bandwidth: 1 << 20}, // 1 MiB/s
	}}, 0)
	perWrite := time.Duration(float64(64*1024) / float64(1<<20) * float64(time.Second)) // 62.5ms
	v1 := w.decide(1, 64*1024)
	v2 := w.decide(1, 64*1024)
	if v1.action != WireThrottle || v2.action != WireThrottle {
		t.Fatalf("actions %v, %v, want throttle", v1.action, v2.action)
	}
	if v1.sleep <= 0 || v1.sleep > perWrite+10*time.Millisecond {
		t.Fatalf("first write pays %v, want ~%v", v1.sleep, perWrite)
	}
	if v2.sleep < v1.sleep+perWrite/2 {
		t.Fatalf("second write pays %v after first's %v: writes are not serializing", v2.sleep, v1.sleep)
	}
}

func TestWireActionString(t *testing.T) {
	want := map[WireAction]string{
		WireDelay: "delay", WireDrop: "drop", WireCorrupt: "corrupt",
		WireReset: "reset", WirePartition: "partition", WireThrottle: "throttle",
	}
	for a, s := range want {
		if a.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(a), a.String(), s)
		}
	}
}
