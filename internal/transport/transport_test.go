package transport

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{CommID: 1, Src: 0, WorldSrc: 0, Tag: 0, Data: nil},
		{CommID: 1, Src: 3, WorldSrc: 7, Tag: 42, Data: []byte("hello")},
		{CommID: 0xdeadbeefcafe, Src: 255, WorldSrc: 1023, Tag: -2 - 9*1024, Data: bytes.Repeat([]byte{0xAB}, 4096)},
		{CommID: 2, Src: 1, WorldSrc: 2, Tag: -1, Data: []byte{0}},
	}
	for i, f := range frames {
		enc := AppendFrame(nil, &f)
		got, n, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		if n != len(enc) {
			t.Fatalf("frame %d: consumed %d of %d bytes", i, n, len(enc))
		}
		checkFrameEq(t, f, got)

		var buf bytes.Buffer
		if err := WriteFrame(&buf, &f); err != nil {
			t.Fatalf("frame %d: write: %v", i, err)
		}
		got2, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: read: %v", i, err)
		}
		checkFrameEq(t, f, got2)
	}
}

func checkFrameEq(t *testing.T, want, got Frame) {
	t.Helper()
	if got.CommID != want.CommID || got.Src != want.Src ||
		got.WorldSrc != want.WorldSrc || got.Tag != want.Tag {
		t.Fatalf("header mismatch: got %+v want %+v", got, want)
	}
	if !bytes.Equal(got.Data, want.Data) {
		t.Fatalf("payload mismatch: got %d bytes want %d", len(got.Data), len(want.Data))
	}
}

func TestFrameStreamConcat(t *testing.T) {
	var buf bytes.Buffer
	want := []Frame{
		{CommID: 1, Src: 0, WorldSrc: 0, Tag: 5, Data: []byte("a")},
		{CommID: 1, Src: 1, WorldSrc: 1, Tag: -64, Data: []byte("bb")},
		{CommID: 9, Src: 2, WorldSrc: 2, Tag: 0, Data: nil},
	}
	for i := range want {
		if err := WriteFrame(&buf, &want[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := range want {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		checkFrameEq(t, want[i], got)
	}
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("expected EOF at stream end")
	}
}

func TestFrameCorruption(t *testing.T) {
	f := Frame{CommID: 3, Src: 1, WorldSrc: 1, Tag: 17, Data: []byte("payload-bytes")}
	enc := AppendFrame(nil, &f)
	// Flip one byte everywhere past the length prefix: every flip must be
	// caught by the CRC, never panic.
	for i := 4; i < len(enc); i++ {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x40
		_, _, err := DecodeFrame(bad)
		if !errors.Is(err, ErrBadCRC) {
			t.Fatalf("flip at %d: got %v, want ErrBadCRC", i, err)
		}
		if _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrBadCRC) {
			t.Fatalf("flip at %d (stream): got %v, want ErrBadCRC", i, err)
		}
	}
}

func TestFrameTruncated(t *testing.T) {
	f := Frame{CommID: 3, Src: 1, WorldSrc: 1, Tag: 17, Data: []byte("payload")}
	enc := AppendFrame(nil, &f)
	for n := 0; n < len(enc); n++ {
		if _, _, err := DecodeFrame(enc[:n]); !errors.Is(err, ErrTruncatedFrame) {
			t.Fatalf("len %d: got %v, want ErrTruncatedFrame", n, err)
		}
	}
	// A stream that dies mid-frame is typed too (except a clean boundary EOF).
	for n := 1; n < len(enc); n++ {
		_, err := ReadFrame(bytes.NewReader(enc[:n]))
		if !errors.Is(err, ErrTruncatedFrame) {
			t.Fatalf("stream len %d: got %v, want ErrTruncatedFrame", n, err)
		}
	}
}

func TestFrameTooBig(t *testing.T) {
	f := Frame{CommID: 1, Data: []byte("x")}
	enc := AppendFrame(nil, &f)
	enc[0], enc[1], enc[2], enc[3] = 0xFF, 0xFF, 0xFF, 0x7F // ~2 GiB length prefix
	if _, _, err := DecodeFrame(enc); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("got %v, want ErrFrameTooBig", err)
	}
	if _, err := ReadFrame(bytes.NewReader(enc)); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("stream: got %v, want ErrFrameTooBig", err)
	}
}

func TestChanEngine(t *testing.T) {
	var gotDst int
	var gotFrame *Frame
	charged := 0
	tr := NewChan(func(dst int, f *Frame) { gotDst, gotFrame = dst, f },
		func(bytes int) { charged += bytes })
	f := &Frame{CommID: 1, Src: 0, Tag: 7, Data: []byte("abc")}
	if err := tr.Send(3, f); err != nil {
		t.Fatal(err)
	}
	if gotDst != 3 || gotFrame != f {
		t.Fatalf("delivered (%d,%p), want (3,%p)", gotDst, gotFrame, f)
	}
	if charged != 3 {
		t.Fatalf("cost charged %d bytes, want 3", charged)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// dialWorld brings up a coordinator plus size sock endpoints in one
// process. Each rank's inbound frames land in its own slice.
func dialWorld(t *testing.T, network string, size int) (*Coordinator, []*Sock, []chan Frame) {
	t.Helper()
	addr := ""
	if network == "unix" {
		addr = t.TempDir() + "/coord.sock"
	} else {
		addr = "127.0.0.1:0"
	}
	coord, err := NewCoordinator(network, addr, size)
	if err != nil {
		t.Fatal(err)
	}
	socks := make([]*Sock, size)
	inbox := make([]chan Frame, size)
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		inbox[r] = make(chan Frame, 128)
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ch := inbox[r]
			socks[r], errs[r] = DialSock(SockConfig{
				Network: network, Coord: coord.Addr(), Rank: r, Size: size,
				Deliver: func(dst int, f *Frame) { ch <- *f },
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, s := range socks {
			if s != nil {
				s.Close()
			}
		}
		coord.Close()
	})
	return coord, socks, inbox
}

func testSockWorld(t *testing.T, network string) {
	const size = 3
	_, socks, inbox := dialWorld(t, network, size)

	// All-pairs (including self-send) with distinguishable payloads.
	for src := 0; src < size; src++ {
		for dst := 0; dst < size; dst++ {
			f := &Frame{CommID: 1, Src: src, WorldSrc: src, Tag: 100*src + dst,
				Data: []byte{byte(src), byte(dst)}}
			if err := socks[src].Send(dst, f); err != nil {
				t.Fatalf("send %d→%d: %v", src, dst, err)
			}
		}
	}
	for dst := 0; dst < size; dst++ {
		seen := map[int]bool{}
		for i := 0; i < size; i++ {
			select {
			case f := <-inbox[dst]:
				if f.Tag != 100*f.Src+dst || !bytes.Equal(f.Data, []byte{byte(f.Src), byte(dst)}) {
					t.Fatalf("dst %d: bad frame %+v", dst, f)
				}
				seen[f.Src] = true
			case <-time.After(5 * time.Second):
				t.Fatalf("dst %d: timed out after %d frames", dst, i)
			}
		}
		if len(seen) != size {
			t.Fatalf("dst %d: got frames from %v", dst, seen)
		}
	}
	st := socks[0].Stats()
	if st.SentFrames != size || st.RecvFrames != size {
		t.Fatalf("rank 0 stats %+v, want %d sent/recv frames", st, size)
	}
}

func TestSockWorldTCP(t *testing.T)  { testSockWorld(t, "tcp") }
func TestSockWorldUnix(t *testing.T) { testSockWorld(t, "unix") }

func TestSockFIFOOrdering(t *testing.T) {
	_, socks, inbox := dialWorld(t, "tcp", 2)
	const n = 500
	for i := 0; i < n; i++ {
		f := &Frame{CommID: 1, Src: 0, WorldSrc: 0, Tag: i, Data: []byte{byte(i)}}
		if err := socks[0].Send(1, f); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case f := <-inbox[1]:
			if f.Tag != i {
				t.Fatalf("frame %d arrived with tag %d: FIFO violated", i, f.Tag)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out at frame %d", i)
		}
	}
}

func TestSockPeerDeath(t *testing.T) {
	const size = 2
	network := "tcp"
	coord, err := NewCoordinator(network, "127.0.0.1:0", size)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	deaths := make(chan int, 8)
	socks := make([]*Sock, size)
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := SockConfig{
				Network: network, Coord: coord.Addr(), Rank: r, Size: size,
				Deliver: func(int, *Frame) {},
			}
			if r == 0 {
				cfg.OnPeerDeath = func(rank int) { deaths <- rank }
			}
			socks[r], errs[r] = DialSock(cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	defer socks[0].Close()

	// Rank 1 "dies": closing its endpoint drops its coordinator
	// connection, which must surface at rank 0 as a typed death.
	socks[1].Close()
	select {
	case r := <-deaths:
		if r != 1 {
			t.Fatalf("death of rank %d, want 1", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no peer-death notification")
	}
	// And sends to the dead peer fail with the typed error.
	var pd *PeerDeadError
	err = socks[0].Send(1, &Frame{CommID: 1, Data: []byte("x")})
	if !errors.As(err, &pd) || pd.Rank != 1 {
		t.Fatalf("send to dead peer: %v, want *PeerDeadError{Rank:1}", err)
	}
}

func TestSockRejoin(t *testing.T) {
	const size = 2
	network := "tcp"
	coord, err := NewCoordinator(network, "127.0.0.1:0", size)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	deaths := make(chan int, 8)
	rejoins := make(chan int, 8)
	inbox0 := make(chan Frame, 16)
	socks := make([]*Sock, size)
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := SockConfig{
				Network: network, Coord: coord.Addr(), Rank: r, Size: size,
				Deliver: func(int, *Frame) {},
			}
			if r == 0 {
				cfg.Deliver = func(dst int, f *Frame) { inbox0 <- *f }
				cfg.OnPeerDeath = func(rank int) { deaths <- rank }
				cfg.OnPeerRejoin = func(rank int) { rejoins <- rank }
			}
			socks[r], errs[r] = DialSock(cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	defer socks[0].Close()

	socks[1].Close()
	select {
	case <-deaths:
	case <-time.After(5 * time.Second):
		t.Fatal("no death before rejoin")
	}

	// Respawn rank 1 with a bumped incarnation: rank 0 must see the
	// rejoin and traffic must flow again in both directions.
	s1b, err := DialSock(SockConfig{
		Network: network, Coord: coord.Addr(), Rank: 1, Size: size, Inc: 1,
		Deliver: func(int, *Frame) {},
	})
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	defer s1b.Close()
	select {
	case r := <-rejoins:
		if r != 1 {
			t.Fatalf("rejoin of rank %d, want 1", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no rejoin notification")
	}
	if err := s1b.Send(0, &Frame{CommID: 1, Src: 1, WorldSrc: 1, Tag: 9, Data: []byte("back")}); err != nil {
		t.Fatalf("send after rejoin: %v", err)
	}
	select {
	case f := <-inbox0:
		if f.Tag != 9 || string(f.Data) != "back" {
			t.Fatalf("bad frame after rejoin: %+v", f)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("frame from rejoined peer never arrived")
	}
	if err := socks[0].Send(1, &Frame{CommID: 1, Src: 0, WorldSrc: 0, Tag: 10, Data: []byte("hi")}); err != nil {
		t.Fatalf("send to rejoined peer: %v", err)
	}
}
