package transport

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// dialWorldCfg is dialWorld with a per-rank config hook, for tests that
// inject wire faults or tighten the recovery timings.
func dialWorldCfg(t *testing.T, network string, size int, mutate func(r int, cfg *SockConfig)) (*Coordinator, []*Sock, []chan Frame) {
	t.Helper()
	addr := "127.0.0.1:0"
	if network == "unix" {
		addr = t.TempDir() + "/coord.sock"
	}
	coord, err := NewCoordinator(network, addr, size)
	if err != nil {
		t.Fatal(err)
	}
	socks := make([]*Sock, size)
	inbox := make([]chan Frame, size)
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		inbox[r] = make(chan Frame, 4096)
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ch := inbox[r]
			cfg := SockConfig{
				Network: network, Coord: coord.Addr(), Rank: r, Size: size,
				Deliver: func(dst int, f *Frame) { ch <- *f },
			}
			if mutate != nil {
				mutate(r, &cfg)
			}
			socks[r], errs[r] = DialSock(cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, s := range socks {
			if s != nil {
				s.Close()
			}
		}
		coord.Close()
	})
	return coord, socks, inbox
}

// fastRecovery tightens the recovery timings so fault tests converge in
// milliseconds instead of the production-scale defaults.
func fastRecovery(cfg *SockConfig) {
	cfg.AckInterval = 5 * time.Millisecond
	cfg.RetransmitTimeout = 250 * time.Millisecond
	cfg.HandshakeTimeout = 500 * time.Millisecond
	cfg.ReconnectTimeout = 10 * time.Second
}

// sendNumbered ships frames tagged 0..n-1 from src to dst, pausing after
// the first until it has been received — so the session is live and any
// mid-stream fault lands on an established connection, not the initial
// dial.
func sendNumbered(t *testing.T, src, dst *Sock, dstRank, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		f := &Frame{CommID: 1, Src: src.cfg.Rank, WorldSrc: src.cfg.Rank, Tag: i, Data: []byte{byte(i)}}
		if err := src.Send(dstRank, f); err != nil {
			t.Fatalf("send %d: %v (a torn connection must not surface to Send)", i, err)
		}
		if i == 0 {
			deadline := time.Now().Add(10 * time.Second)
			for dst.Stats().RecvFrames == 0 {
				if time.Now().After(deadline) {
					t.Fatal("first frame never delivered")
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
}

// expectInOrder drains n frames from inbox and asserts their tags run
// 0..n-1 — per-peer FIFO with no loss and no duplicates, the contract
// recovery must preserve.
func expectInOrder(t *testing.T, inbox chan Frame, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		select {
		case f := <-inbox:
			if f.Tag != i {
				t.Fatalf("frame %d arrived with tag %d: order or content broken by recovery", i, f.Tag)
			}
			if len(f.Data) != 1 || f.Data[0] != byte(i) {
				t.Fatalf("frame %d: payload corrupted: %v", i, f.Data)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for frame %d of %d", i, n)
		}
	}
	select {
	case f := <-inbox:
		t.Fatalf("duplicate frame after the stream: %+v", f)
	case <-time.After(100 * time.Millisecond):
	}
}

// A connection hard-reset mid-frame must come back as reconnect + resend,
// bit-identical and in order — not as a dead rank.
func TestSockResetMidFrameRecovers(t *testing.T) {
	const n = 20
	_, socks, inbox := dialWorldCfg(t, "tcp", 2, func(r int, cfg *SockConfig) {
		fastRecovery(cfg)
		if r == 0 {
			cfg.WirePlan = &WirePlan{Seed: 11, Rules: []WireRule{
				// Writes toward rank 1: hello, frame 0, then the inline
				// burst. The sixth write (data frame 4) dies mid-buffer.
				{Action: WireReset, Src: 0, Dst: WireDst(1), After: 5, Count: 1},
			}}
		}
	})
	sendNumbered(t, socks[0], socks[1], 1, n)
	expectInOrder(t, inbox[1], n)
	st := socks[0].Stats()
	if st.Reconnects < 1 || st.Redials < 1 || st.ResentFrames < 1 {
		t.Fatalf("stats %+v: reset recovery must count a reconnect, a redial and resent frames", st)
	}
	if st.SentFrames != n {
		t.Fatalf("SentFrames = %d, want %d: resends must not inflate the send counter", st.SentFrames, n)
	}
	if socks[1].Stats().RecvFrames != n {
		t.Fatalf("RecvFrames = %d, want %d: duplicates must not inflate the recv counter", socks[1].Stats().RecvFrames, n)
	}
}

// Bytes corrupted on the wire are caught below the codec (CRC or sequence
// mismatch) and repaired by reconnect + resend; the old behavior — a CRC
// error killing the rank — is exactly what this pins against.
func TestSockCorruptOnWireRecovers(t *testing.T) {
	const n = 20
	_, socks, inbox := dialWorldCfg(t, "tcp", 2, func(r int, cfg *SockConfig) {
		fastRecovery(cfg)
		if r == 0 {
			cfg.WirePlan = &WirePlan{Seed: 23, Rules: []WireRule{
				{Action: WireCorrupt, Src: 0, Dst: WireDst(1), After: 3, Count: 1},
			}}
		}
	})
	sendNumbered(t, socks[0], socks[1], 1, n)
	expectInOrder(t, inbox[1], n)
	st := socks[0].Stats()
	if st.Redials < 1 || st.ResentFrames < 1 {
		t.Fatalf("stats %+v: corrupt-on-wire recovery must redial and resend", st)
	}
}

// A silently dropped frame — no error on either side — is exposed by the
// receiver's sequence gap (or, for a trailing frame, the sender's ack
// stall) and repaired by resend.
func TestSockSilentDropRecovers(t *testing.T) {
	const n = 30
	_, socks, inbox := dialWorldCfg(t, "tcp", 2, func(r int, cfg *SockConfig) {
		fastRecovery(cfg)
		if r == 0 {
			cfg.WirePlan = &WirePlan{Seed: 31, Rules: []WireRule{
				{Action: WireDrop, Src: 0, Dst: WireDst(1), After: 10, Count: 1},
			}}
		}
	})
	sendNumbered(t, socks[0], socks[1], 1, n)
	expectInOrder(t, inbox[1], n)
	if st := socks[0].Stats(); st.ResentFrames < 1 {
		t.Fatalf("stats %+v: a swallowed frame must be resent", st)
	}
}

// The drop hitting the *last* frame of a burst: no successor reveals the
// gap, so only the ack-progress monitor can — the half-open/silent-loss
// backstop.
func TestSockTrailingDropAckStall(t *testing.T) {
	const n = 5
	_, socks, inbox := dialWorldCfg(t, "tcp", 2, func(r int, cfg *SockConfig) {
		fastRecovery(cfg)
		if r == 0 {
			cfg.WirePlan = &WirePlan{Seed: 43, Rules: []WireRule{
				// Hello, frame 0, frames 1..3 inline pass; the sixth write
				// — the final data frame — vanishes with no successor to
				// reveal the gap.
				{Action: WireDrop, Src: 0, Dst: WireDst(1), After: n, Count: 1},
			}}
		}
	})
	sendNumbered(t, socks[0], socks[1], 1, n)
	expectInOrder(t, inbox[1], n)
	if st := socks[0].Stats(); st.ResentFrames < 1 || st.Reconnects < 1 {
		t.Fatalf("stats %+v: trailing drop must be recovered via ack-stall tear + resend", st)
	}
}

// The two sides of a healthy exchange must agree exactly: sender frame and
// byte counters mirror the receiver's.
func TestSockStatsMirror(t *testing.T) {
	const n = 50
	_, socks, inbox := dialWorldCfg(t, "tcp", 2, nil)
	var wantBytes int64
	for i := 0; i < n; i++ {
		data := make([]byte, 1+i%7)
		for j := range data {
			data[j] = byte(i)
		}
		wantBytes += int64(len(data))
		if err := socks[0].Send(1, &Frame{CommID: 1, Src: 0, WorldSrc: 0, Tag: i, Data: data}); err != nil {
			t.Fatal(err)
		}
		if err := socks[1].Send(0, &Frame{CommID: 1, Src: 1, WorldSrc: 1, Tag: i, Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		<-inbox[0]
		<-inbox[1]
	}
	for r := 0; r < 2; r++ {
		st := socks[r].Stats()
		if st.SentFrames != n || st.RecvFrames != n {
			t.Fatalf("rank %d: %+v, want %d sent and %d recv frames", r, st, n, n)
		}
		if st.SentBytes != wantBytes || st.RecvBytes != wantBytes {
			t.Fatalf("rank %d: %+v, want %d bytes both ways", r, st, wantBytes)
		}
		if st.Reconnects != 0 || st.ResentFrames != 0 {
			t.Fatalf("rank %d: %+v: healthy run must not count recoveries", r, st)
		}
	}
	s0, s1 := socks[0].Stats(), socks[1].Stats()
	if s0.SentFrames != s1.RecvFrames || s0.SentBytes != s1.RecvBytes {
		t.Fatalf("sides disagree: %+v vs %+v", s0, s1)
	}
}

// A world that cannot form — a rank process missing — must surface as a
// typed JoinTimeoutError, not an eternal hang at the barrier.
func TestSockJoinTimeout(t *testing.T) {
	coord, err := NewCoordinator("tcp", "127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	start := time.Now()
	_, err = DialSock(SockConfig{
		Network: "tcp", Coord: coord.Addr(), Rank: 0, Size: 2,
		Deliver:     func(int, *Frame) {},
		JoinTimeout: 300 * time.Millisecond,
	})
	var jt *JoinTimeoutError
	if !errors.As(err, &jt) {
		t.Fatalf("got %v, want *JoinTimeoutError", err)
	}
	if jt.Rank != 0 || jt.Timeout != 300*time.Millisecond {
		t.Fatalf("error fields %+v", jt)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("gave up after %v: the timeout is not bounding the wait", elapsed)
	}
}

// A rank process that hangs — connection open, heartbeats stopped — must
// be evicted by the coordinator's read deadline and broadcast as dead,
// instead of wedging the world forever.
func TestCoordinatorEvictsHungRank(t *testing.T) {
	coord, err := NewCoordinator("tcp", "127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	coord.SetTimeouts(300*time.Millisecond, 0)
	defer coord.Close()

	deaths := make(chan int, 4)
	socks := make([]*Sock, 2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := SockConfig{
				Network: "tcp", Coord: coord.Addr(), Rank: r, Size: 2,
				Deliver:           func(int, *Frame) {},
				HeartbeatInterval: 50 * time.Millisecond,
			}
			if r == 0 {
				cfg.OnPeerDeath = func(rank int) { deaths <- rank }
			} else {
				// Rank 1 is the hung process: it joins, then never
				// heartbeats again.
				cfg.HeartbeatInterval = time.Hour
			}
			socks[r], errs[r] = DialSock(cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	defer socks[0].Close()
	defer socks[1].Close()

	select {
	case r := <-deaths:
		if r != 1 {
			t.Fatalf("death of rank %d, want the hung rank 1", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hung rank never evicted: the coordinator read deadline is not working")
	}
}

// FuzzCoordProto throws arbitrary bytes at the coordinator's newline-JSON
// control connection: whatever arrives, the coordinator must neither
// panic nor wedge (Close must return).
func FuzzCoordProto(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{"op":"join","rank":0,"addr":"127.0.0.1:9","inc":0}` + "\n"),
		[]byte(`{"op":"join","rank":1,"addr":"x","inc":3}` + "\n" + `{"op":"ping","rank":1}` + "\n"),
		[]byte(`{"op":"join","rank":99,"addr":"y"}` + "\n"),
		[]byte(`{"op":"join","rank":-1}` + "\n"),
		[]byte(`{"op":"joi`),
		[]byte(""),
		[]byte("\x00\xff\x7f frame junk \x00"),
		[]byte(`{"op":"death","rank":1}` + "\n" + `{"op":"world","size":9}` + "\n"),
		[]byte(`{"op":"join","rank":0,"inc":4294967295,"addrs":["a","b"],"dead":[true,true]}` + "\n"),
		[]byte(`{"op":"join","rank":0}` + "\n" + `{"op":"join","rank":0,"inc":1}` + "\n"),
		[]byte(`[1,2,3]` + "\n" + `"just a string"` + "\n"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		coord, err := NewCoordinator("tcp", "127.0.0.1:0", 2)
		if err != nil {
			t.Skip("no loopback listener available")
		}
		coord.SetTimeouts(100*time.Millisecond, 100*time.Millisecond)
		conn, err := net.Dial("tcp", coord.Addr())
		if err == nil {
			conn.SetDeadline(time.Now().Add(time.Second))
			conn.Write(data)
			conn.Close()
		}
		done := make(chan struct{})
		go func() {
			coord.Close()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("coordinator wedged: Close did not return")
		}
	})
}
