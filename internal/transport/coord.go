package transport

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Default coordinator deadlines. The read timeout must comfortably exceed
// the clients' heartbeat interval (default 2s): a member is evicted only
// after missing several heartbeats in a row.
const (
	defaultCoordReadTimeout  = 10 * time.Second
	defaultCoordWriteTimeout = 5 * time.Second
)

// Coordinator is the rendezvous point of a sock-transport world: a tiny
// registry mapping world rank → listen address. Every rank process dials
// it, announces (rank, addr, incarnation), and blocks until all Size
// ranks have joined — the world barrier on join — at which point each
// receives the full address map and starts talking to its peers directly.
// The coordinator carries no data-plane traffic.
//
// After the world forms the coordinator keeps one connection per rank
// open and turns membership changes into broadcasts:
//
//   - a rank's connection dropping or going silent past ReadTimeout →
//     "death" to every other rank (typed peer-death detection even for
//     peers with no direct connection yet — and eviction of hung
//     processes, which hold their connection open but stop heartbeating);
//   - a rank re-joining with a higher incarnation (a supervisor respawned
//     its process) → "update" with the new address, so peers redial.
//
// Clients ping periodically ({"op":"ping"}); any decoded message renews a
// member's read deadline. The protocol is newline-delimited JSON; the
// data plane between ranks uses the binary frame format, not this.
type Coordinator struct {
	ln   net.Listener
	size int

	// readTO is how long a member connection may stay silent before the
	// coordinator declares the rank dead — the defense against a hung
	// (not crashed) rank process wedging the world. writeTO bounds each
	// broadcast write so one stuck client cannot stall membership updates
	// to the others. Atomic because SetTimeouts may race the accept loop.
	readTO  atomic.Int64
	writeTO atomic.Int64

	mu      sync.Mutex
	members []coordMember
	started bool // world barrier released at least once
	closed  bool

	wg sync.WaitGroup
}

type coordMember struct {
	addr   string
	inc    uint32
	conn   net.Conn
	enc    *json.Encoder
	joined bool
	dead   bool
}

// coordMsg is every message of the rendezvous protocol; Op selects which
// fields are meaningful.
type coordMsg struct {
	// Op is "join"/"ping" (client→coordinator), or "world"/"update"/
	// "death" (coordinator→client).
	Op   string `json:"op"`
	Rank int    `json:"rank,omitempty"`
	Addr string `json:"addr,omitempty"`
	Inc  uint32 `json:"inc,omitempty"`
	// World snapshot (Op == "world").
	Size  int      `json:"size,omitempty"`
	Addrs []string `json:"addrs,omitempty"`
	Incs  []uint32 `json:"incs,omitempty"`
	Dead  []bool   `json:"dead,omitempty"`
}

// NewCoordinator starts a coordinator for a world of the given size,
// listening on network/addr ("tcp"/"127.0.0.1:0" or "unix"/path). Use
// Addr to learn the bound address.
func NewCoordinator(network, addr string, size int) (*Coordinator, error) {
	if size <= 0 {
		return nil, fmt.Errorf("transport: coordinator world size must be positive, got %d", size)
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("transport: coordinator listen: %w", err)
	}
	c := &Coordinator{ln: ln, size: size, members: make([]coordMember, size)}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// SetTimeouts overrides the member read deadline (hung-rank eviction) and
// broadcast write deadline; zero keeps the respective default. Call before
// any rank dials so every connection is served under one policy.
func (c *Coordinator) SetTimeouts(read, write time.Duration) {
	c.readTO.Store(int64(read))
	c.writeTO.Store(int64(write))
}

func (c *Coordinator) readTimeout() time.Duration {
	if d := time.Duration(c.readTO.Load()); d > 0 {
		return d
	}
	return defaultCoordReadTimeout
}

func (c *Coordinator) writeTimeout() time.Duration {
	if d := time.Duration(c.writeTO.Load()); d > 0 {
		return d
	}
	return defaultCoordWriteTimeout
}

// Addr returns the address ranks should dial to join.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Close shuts the coordinator down and drops every rank connection.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := make([]net.Conn, 0, len(c.members))
	for i := range c.members {
		if c.members[i].conn != nil {
			conns = append(conns, c.members[i].conn)
		}
	}
	c.mu.Unlock()
	err := c.ln.Close()
	for _, conn := range conns {
		conn.Close()
	}
	c.wg.Wait()
	return err
}

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go c.handle(conn)
	}
}

// handle serves one rank connection: a join, then heartbeats until EOF or
// silence past the read deadline — either way the rank is gone.
func (c *Coordinator) handle(conn net.Conn) {
	defer c.wg.Done()
	dec := json.NewDecoder(conn)
	conn.SetReadDeadline(time.Now().Add(c.readTimeout()))
	var join coordMsg
	if err := dec.Decode(&join); err != nil || join.Op != "join" ||
		join.Rank < 0 || join.Rank >= c.size {
		conn.Close()
		return
	}
	if !c.register(join, conn) {
		conn.Close()
		return
	}
	// From here the client sends only heartbeats. Every decoded message
	// renews the deadline; a member silent past it is indistinguishable
	// from a hung process and is evicted exactly like a dead one.
	var hb coordMsg
	for {
		conn.SetReadDeadline(time.Now().Add(c.readTimeout()))
		if err := dec.Decode(&hb); err != nil {
			break
		}
	}
	c.disconnected(join.Rank, conn)
	conn.Close()
}

// register admits one (re)join. It releases the world barrier when the
// last first-generation rank arrives, and answers a rejoin immediately
// (the world already runs) while broadcasting the new address to peers.
func (c *Coordinator) register(join coordMsg, conn net.Conn) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	m := &c.members[join.Rank]
	if m.conn != nil {
		m.conn.Close() // a stale connection of a previous incarnation
	}
	*m = coordMember{
		addr:   join.Addr,
		inc:    join.Inc,
		conn:   conn,
		enc:    json.NewEncoder(conn),
		joined: true,
	}
	if !c.started {
		joined := 0
		for i := range c.members {
			if c.members[i].joined {
				joined++
			}
		}
		if joined < c.size {
			return true // keep waiting at the barrier
		}
		c.started = true
		for i := range c.members {
			c.sendWorldLocked(&c.members[i])
		}
		return true
	}
	// Rejoin after the world formed: answer now, tell the others.
	c.sendWorldLocked(m)
	for i := range c.members {
		if i == join.Rank || c.members[i].enc == nil {
			continue
		}
		c.members[i].conn.SetWriteDeadline(time.Now().Add(c.writeTimeout()))
		c.members[i].enc.Encode(coordMsg{
			Op: "update", Rank: join.Rank, Addr: join.Addr, Inc: join.Inc,
		})
		c.members[i].conn.SetWriteDeadline(time.Time{})
	}
	return true
}

// sendWorldLocked sends the current membership snapshot to one member.
func (c *Coordinator) sendWorldLocked(m *coordMember) {
	if m.enc == nil {
		return
	}
	msg := coordMsg{Op: "world", Size: c.size,
		Addrs: make([]string, c.size), Incs: make([]uint32, c.size), Dead: make([]bool, c.size)}
	for i := range c.members {
		msg.Addrs[i] = c.members[i].addr
		msg.Incs[i] = c.members[i].inc
		msg.Dead[i] = c.members[i].dead
	}
	m.conn.SetWriteDeadline(time.Now().Add(c.writeTimeout()))
	m.enc.Encode(msg)
	m.conn.SetWriteDeadline(time.Time{})
}

// disconnected handles a rank connection dropping or timing out. If the
// rank has not been superseded by a newer incarnation it is declared dead
// and the death is broadcast.
func (c *Coordinator) disconnected(rank int, conn net.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := &c.members[rank]
	if m.conn != conn {
		return // a newer incarnation already took over this slot
	}
	m.conn, m.enc = nil, nil
	m.joined = false
	if c.closed || !c.started {
		// Before the world barrier releases, a dropped rank simply
		// un-joins (its launcher will retry); there is no one to notify.
		return
	}
	m.dead = true
	for i := range c.members {
		if i == rank || c.members[i].enc == nil {
			continue
		}
		c.members[i].conn.SetWriteDeadline(time.Now().Add(c.writeTimeout()))
		c.members[i].enc.Encode(coordMsg{Op: "death", Rank: rank})
		c.members[i].conn.SetWriteDeadline(time.Time{})
	}
}
