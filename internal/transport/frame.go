package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Wire format of one frame, everything little-endian:
//
//	[0:4)   payload length (uint32)
//	[4:12)  CommID (uint64)
//	[12:16) WorldSrc (uint32)
//	[16:20) Src (uint32)
//	[20:28) Tag (int64; internal collective tags are negative)
//	[28:32) CRC32C over bytes [4:28) plus the payload
//	[32:..) payload
//
// The length prefix frames the stream; the CRC covers the header fields
// and the payload so a flipped byte anywhere in a frame is detected
// before it reaches a mailbox. Decoding never panics: malformed input
// surfaces as one of the typed errors below, which is what lets the sock
// engine treat a corrupt connection as a peer fault instead of a crash.

// FrameHeaderLen is the fixed number of bytes before a frame's payload.
const FrameHeaderLen = 32

// MaxFrameBytes caps a single frame's payload, bounding the allocation a
// length prefix can demand from a corrupt or hostile stream.
const MaxFrameBytes = 1 << 30

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Typed decode errors. ErrTruncatedFrame also covers a stream that ends
// mid-frame (io.ErrUnexpectedEOF wraps it in ReadFrame).
var (
	// ErrTruncatedFrame marks input shorter than its framing promises.
	ErrTruncatedFrame = errors.New("transport: truncated frame")
	// ErrBadCRC marks a frame whose checksum does not match its bytes.
	ErrBadCRC = errors.New("transport: frame CRC mismatch")
	// ErrFrameTooBig marks a length prefix beyond MaxFrameBytes.
	ErrFrameTooBig = errors.New("transport: frame exceeds size limit")
)

// AppendFrame appends the wire encoding of f to dst and returns the
// extended slice.
func AppendFrame(dst []byte, f *Frame) []byte {
	var hdr [FrameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(f.Data)))
	binary.LittleEndian.PutUint64(hdr[4:], f.CommID)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(f.WorldSrc))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(f.Src))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(int64(f.Tag)))
	crc := crc32.Update(0, crcTable, hdr[4:28])
	crc = crc32.Update(crc, crcTable, f.Data)
	binary.LittleEndian.PutUint32(hdr[28:], crc)
	dst = append(dst, hdr[:]...)
	return append(dst, f.Data...)
}

// DecodeFrame parses one frame from the front of b, returning the frame
// and the number of bytes it consumed. The returned payload aliases b.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < FrameHeaderLen {
		return Frame{}, 0, ErrTruncatedFrame
	}
	n := binary.LittleEndian.Uint32(b[0:])
	if n > MaxFrameBytes {
		return Frame{}, 0, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	total := FrameHeaderLen + int(n)
	if len(b) < total {
		return Frame{}, 0, ErrTruncatedFrame
	}
	payload := b[FrameHeaderLen:total:total]
	crc := crc32.Update(0, crcTable, b[4:28])
	crc = crc32.Update(crc, crcTable, payload)
	if crc != binary.LittleEndian.Uint32(b[28:]) {
		return Frame{}, 0, ErrBadCRC
	}
	return Frame{
		CommID:   binary.LittleEndian.Uint64(b[4:]),
		WorldSrc: int(int32(binary.LittleEndian.Uint32(b[12:]))),
		Src:      int(int32(binary.LittleEndian.Uint32(b[16:]))),
		Tag:      int(int64(binary.LittleEndian.Uint64(b[20:]))),
		Data:     payload,
	}, total, nil
}

// WriteFrame writes f's wire encoding to w in one Write call (sock
// connections rely on a single write per frame so concurrent senders
// serialize at the connection mutex, not mid-frame).
func WriteFrame(w io.Writer, f *Frame) error {
	buf := AppendFrame(make([]byte, 0, FrameHeaderLen+len(f.Data)), f)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame from r. A clean EOF before the first header
// byte returns io.EOF; a stream ending mid-frame returns an error wrapping
// ErrTruncatedFrame. The payload is freshly allocated (it must outlive the
// read buffer — it goes straight into a mailbox).
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [FrameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: %v", ErrTruncatedFrame, err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:])
	if n > MaxFrameBytes {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, fmt.Errorf("%w: %v", ErrTruncatedFrame, err)
	}
	crc := crc32.Update(0, crcTable, hdr[4:28])
	crc = crc32.Update(crc, crcTable, payload)
	if crc != binary.LittleEndian.Uint32(hdr[28:]) {
		return Frame{}, ErrBadCRC
	}
	return Frame{
		CommID:   binary.LittleEndian.Uint64(hdr[4:]),
		WorldSrc: int(int32(binary.LittleEndian.Uint32(hdr[12:]))),
		Src:      int(int32(binary.LittleEndian.Uint32(hdr[16:]))),
		Tag:      int(int64(binary.LittleEndian.Uint64(hdr[20:]))),
		Data:     payload,
	}, nil
}
