// Package plotfile implements an AMReX-plotfile-style snapshot format: the
// data are split into separate files among groups of simulation processes,
// each group writing its own file, with a small global header written by
// rank 0. This is the "Plotfiles" column of Table II — spreading the write
// over many files avoids the single-shared-file locking that makes N-to-1
// HDF5 writes collapse, at the price of a format only the producing code
// understands.
package plotfile

import (
	"encoding/binary"
	"fmt"

	"lowfive/h5"
	"lowfive/internal/grid"
	"lowfive/internal/native"
	"lowfive/mpi"
)

const magic = "LFPF"

// Write stores a block-decomposed field as a plotfile set named base:
// base.header plus one base.grpK data file per group of groupSize ranks.
// boxes lists every rank's block (all ranks can compute it from the shared
// decomposition), so offsets need no communication — as in AMReX, where
// the grid hierarchy is globally known.
func Write(be native.Backend, base string, task *mpi.Comm, groupSize int, dims []int64, boxes []grid.Box, data []float32) error {
	if groupSize < 1 {
		groupSize = 1
	}
	rank := task.Rank()
	myGroup := rank / groupSize
	// Byte offset of each rank's record within its group file.
	offset := int64(16) // per-file preamble: magic + record count
	for r := myGroup * groupSize; r < rank; r++ {
		if r < len(boxes) {
			offset += recordSize(boxes[r])
		}
	}
	name := fmt.Sprintf("%s.grp%d", base, myGroup)
	st, err := be.Create(name)
	if err != nil {
		return fmt.Errorf("plotfile: creating %q: %w", name, err)
	}
	defer st.Close()
	// Group leader writes the per-file preamble.
	if rank%groupSize == 0 {
		var pre [16]byte
		copy(pre[:4], magic)
		count := groupSize
		if (myGroup+1)*groupSize > task.Size() {
			count = task.Size() - myGroup*groupSize
		}
		binary.LittleEndian.PutUint64(pre[8:], uint64(count))
		if _, err := st.WriteAt(pre[:], 0); err != nil {
			return err
		}
	}
	// Every rank writes its own record: box bounds then raw field bytes.
	rec := &h5.Encoder{}
	b := boxes[rank]
	rec.PutI64(int64(b.Dim()))
	for d := range b.Min {
		rec.PutI64(b.Min[d])
		rec.PutI64(b.Max[d])
	}
	rec.Buf = append(rec.Buf, h5.Bytes(data)...)
	if _, err := st.WriteAt(rec.Buf, offset); err != nil {
		return err
	}
	// Rank 0 writes the global header naming the groups.
	if rank == 0 {
		hdr, err := be.Create(base + ".header")
		if err != nil {
			return err
		}
		defer hdr.Close()
		e := &h5.Encoder{}
		e.Buf = append(e.Buf, magic...)
		e.PutI64(int64(task.Size()))
		e.PutI64(int64(groupSize))
		e.PutI64(int64(len(dims)))
		for _, d := range dims {
			e.PutI64(d)
		}
		if _, err := hdr.WriteAt(e.Buf, 0); err != nil {
			return err
		}
	}
	return nil
}

func recordSize(b grid.Box) int64 {
	return 8 + int64(b.Dim())*16 + b.NumPoints()*4
}

// Read loads the rank's block back from a plotfile set written with the
// same task size and group size. The paper notes the real plotfile reader
// was unoptimized and excludes its time from the comparison; this reader
// exists for validation.
func Read(be native.Backend, base string, task *mpi.Comm) (dims []int64, box grid.Box, data []float32, err error) {
	hdr, err := be.Open(base + ".header")
	if err != nil {
		return nil, grid.Box{}, nil, fmt.Errorf("plotfile: opening header: %w", err)
	}
	defer hdr.Close()
	size, err := hdr.Size()
	if err != nil {
		return nil, grid.Box{}, nil, err
	}
	buf := make([]byte, size)
	if _, err := hdr.ReadAt(buf, 0); err != nil {
		return nil, grid.Box{}, nil, err
	}
	if string(buf[:4]) != magic {
		return nil, grid.Box{}, nil, fmt.Errorf("plotfile: bad header magic %q", buf[:4])
	}
	d := &h5.Decoder{Buf: buf[4:]}
	nRanks := int(d.I64())
	groupSize := int(d.I64())
	nd := d.I64()
	if d.Err != nil || nd <= 0 || nd > 16 {
		return nil, grid.Box{}, nil, fmt.Errorf("plotfile: corrupt header: %v", d.Err)
	}
	dims = make([]int64, nd)
	for i := range dims {
		dims[i] = d.I64()
	}
	if task.Size() != nRanks {
		return nil, grid.Box{}, nil, fmt.Errorf("plotfile: written by %d ranks, read by %d", nRanks, task.Size())
	}
	rank := task.Rank()
	myGroup := rank / groupSize
	name := fmt.Sprintf("%s.grp%d", base, myGroup)
	st, err := be.Open(name)
	if err != nil {
		return nil, grid.Box{}, nil, err
	}
	defer st.Close()
	// Walk the records to this rank's slot.
	pos := int64(16)
	for r := myGroup * groupSize; r <= rank; r++ {
		var lenBuf [8]byte
		if _, err := st.ReadAt(lenBuf[:], pos); err != nil {
			return nil, grid.Box{}, nil, err
		}
		bd := int64(binary.LittleEndian.Uint64(lenBuf[:]))
		if bd <= 0 || bd > 16 {
			return nil, grid.Box{}, nil, fmt.Errorf("plotfile: corrupt record at %d", pos)
		}
		bbuf := make([]byte, bd*16)
		if _, err := st.ReadAt(bbuf, pos+8); err != nil {
			return nil, grid.Box{}, nil, err
		}
		b := grid.Box{Min: make([]int64, bd), Max: make([]int64, bd)}
		for k := int64(0); k < bd; k++ {
			b.Min[k] = int64(binary.LittleEndian.Uint64(bbuf[k*16:]))
			b.Max[k] = int64(binary.LittleEndian.Uint64(bbuf[k*16+8:]))
		}
		if r == rank {
			data = make([]float32, b.NumPoints())
			if b.NumPoints() > 0 {
				if _, err := st.ReadAt(h5.Bytes(data), pos+8+bd*16); err != nil {
					return nil, grid.Box{}, nil, err
				}
			}
			return dims, b, data, nil
		}
		pos += recordSize(b)
	}
	return nil, grid.Box{}, nil, fmt.Errorf("plotfile: rank %d record not found", rank)
}
