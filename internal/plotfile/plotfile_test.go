package plotfile

import (
	"fmt"
	"testing"

	"lowfive/internal/grid"
	"lowfive/internal/native"
	"lowfive/internal/pfs"
	"lowfive/mpi"
)

func blocksOf(dims []int64, n int) []grid.Box {
	dc := grid.CommonDecomposition(dims, n)
	out := make([]grid.Box, n)
	for i := range out {
		out[i] = dc.Block(i)
	}
	return out
}

func TestWriteReadRoundTrip(t *testing.T) {
	dims := []int64{8, 8, 8}
	for _, cfg := range []struct{ ranks, group int }{{1, 1}, {4, 2}, {6, 4}, {8, 8}} {
		cfg := cfg
		t.Run(fmt.Sprintf("ranks=%d,group=%d", cfg.ranks, cfg.group), func(t *testing.T) {
			fs := pfs.NewZeroCost()
			be := native.PFSBackend(fs)
			boxes := blocksOf(dims, cfg.ranks)
			err := mpi.Run(cfg.ranks, func(c *mpi.Comm) {
				box := boxes[c.Rank()]
				data := make([]float32, box.NumPoints())
				for i := range data {
					data[i] = float32(c.Rank()*1000 + i)
				}
				if err := Write(be, "plt0", c, cfg.group, dims, boxes, data); err != nil {
					t.Error(err)
					return
				}
				c.Barrier()
				rdims, rbox, rdata, err := Read(be, "plt0", c)
				if err != nil {
					t.Error(err)
					return
				}
				if len(rdims) != 3 || rdims[0] != 8 {
					t.Errorf("dims %v", rdims)
				}
				if !rbox.Equal(box) {
					t.Errorf("box %v want %v", rbox, box)
				}
				for i := range data {
					if rdata[i] != data[i] {
						t.Errorf("cell %d: %v != %v", i, rdata[i], data[i])
						return
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestGroupFileCount(t *testing.T) {
	dims := []int64{4, 4, 4}
	fs := pfs.NewZeroCost()
	be := native.PFSBackend(fs)
	boxes := blocksOf(dims, 6)
	err := mpi.Run(6, func(c *mpi.Comm) {
		box := boxes[c.Rank()]
		data := make([]float32, box.NumPoints())
		if err := Write(be, "plt1", c, 2, dims, boxes, data); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// 6 ranks in groups of 2 -> 3 group files plus one header.
	for _, name := range []string{"plt1.header", "plt1.grp0", "plt1.grp1", "plt1.grp2"} {
		if !fs.Exists(name) {
			t.Errorf("missing %s", name)
		}
	}
	if fs.Exists("plt1.grp3") {
		t.Error("too many group files")
	}
}

func TestReadWrongRankCount(t *testing.T) {
	dims := []int64{4, 4, 4}
	fs := pfs.NewZeroCost()
	be := native.PFSBackend(fs)
	boxes := blocksOf(dims, 2)
	err := mpi.Run(2, func(c *mpi.Comm) {
		data := make([]float32, boxes[c.Rank()].NumPoints())
		Write(be, "plt2", c, 1, dims, boxes, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	err = mpi.Run(3, func(c *mpi.Comm) {
		if _, _, _, err := Read(be, "plt2", c); err == nil {
			t.Error("reading with a different rank count should fail")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReadMissing(t *testing.T) {
	fs := pfs.NewZeroCost()
	be := native.PFSBackend(fs)
	err := mpi.Run(1, func(c *mpi.Comm) {
		if _, _, _, err := Read(be, "absent", c); err == nil {
			t.Error("missing plotfile should fail")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGroupLargerThanTask(t *testing.T) {
	dims := []int64{4, 4, 4}
	fs := pfs.NewZeroCost()
	be := native.PFSBackend(fs)
	boxes := blocksOf(dims, 3)
	err := mpi.Run(3, func(c *mpi.Comm) {
		data := make([]float32, boxes[c.Rank()].NumPoints())
		for i := range data {
			data[i] = float32(c.Rank())
		}
		if err := Write(be, "big", c, 99, dims, boxes, data); err != nil {
			t.Error(err)
			return
		}
		c.Barrier()
		_, box, rdata, err := Read(be, "big", c)
		if err != nil {
			t.Error(err)
			return
		}
		if !box.Equal(boxes[c.Rank()]) || rdata[0] != float32(c.Rank()) {
			t.Errorf("rank %d round trip failed", c.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("big.grp0") || fs.Exists("big.grp1") {
		t.Error("oversized group should produce exactly one data file")
	}
}

func TestZeroGroupSizeDefaultsToOne(t *testing.T) {
	dims := []int64{4, 4, 4}
	fs := pfs.NewZeroCost()
	be := native.PFSBackend(fs)
	boxes := blocksOf(dims, 2)
	err := mpi.Run(2, func(c *mpi.Comm) {
		data := make([]float32, boxes[c.Rank()].NumPoints())
		if err := Write(be, "one", c, 0, dims, boxes, data); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("one.grp0") || !fs.Exists("one.grp1") {
		t.Error("group size 0 should default to one rank per file")
	}
}
