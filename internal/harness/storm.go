package harness

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"lowfive/h5"
	"lowfive/internal/buf"
	"lowfive/internal/core"
	"lowfive/internal/native"
	"lowfive/internal/pfs"
	"lowfive/internal/rpc"
	"lowfive/internal/workload"
	"lowfive/mpi"
)

// Storm trials prove the overload-protection layer: a greedy tenant hammers
// a producer task whose admission controller has a single serve slot, and
// the sweep asserts the contract that matters under saturation — every
// query the producers ADMIT still returns bit-exact data, shed queries fail
// fast with a typed retryable error instead of wedging anything, the
// favored tenant's tail latency stays bounded while the greedy tenant is
// throttled, and the chunk pool never exceeds its byte budget nor leaks a
// frame once the storm drains.

// StormTuning carries the overload knobs of one storm trial: the producer
// admission configuration and the two consumer tenants' client-side
// resilience settings. The favored tenant runs without a breaker and with a
// deep shed-retry budget (it represents the interactive workload whose tail
// the fair queue protects); the greedy tenant gets a shallow retry budget
// and an armed breaker, so its saturation converts into fast typed failures
// rather than queue pressure.
type StormTuning struct {
	// MaxInflightServes is the producer serve-slot count (usually 1, the
	// tightest bottleneck).
	MaxInflightServes int
	// QueueDeadline bounds admission waits and doubles as the RetryAfter
	// hint in shed replies.
	QueueDeadline time.Duration
	// MaxQueuedPerTenant caps each tenant's admission queue; the greedy
	// tenant sheds on queue-full long before any deadline expires.
	MaxQueuedPerTenant int
	// FavoredWeight is the favored tenant's fair-queue weight (greedy
	// weighs 1).
	FavoredWeight int
	// FavoredClients and GreedyClients are the consumer task sizes.
	FavoredClients, GreedyClients int
	// FavoredQueries and GreedyQueries are the closed-loop per-client query
	// counts (they may differ: the favored tenant needs enough samples for
	// a meaningful p99; the greedy tenant just needs to saturate).
	FavoredQueries, GreedyQueries int
	// FavoredShedRetries is the favored clients' shed-retry budget.
	FavoredShedRetries int
	// GreedyShedRetries is the greedy clients' (shallow) shed-retry budget.
	GreedyShedRetries int
	// BreakerThreshold and BreakerCooldown arm the greedy clients'
	// per-producer-rank circuit breaker.
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

// DefaultStormTuning returns the standard storm: one serve slot, an 8:1
// fair-queue share, a tiny greedy queue so saturation sheds immediately,
// and a 3-strike breaker on the greedy side.
func DefaultStormTuning() StormTuning {
	return StormTuning{
		MaxInflightServes:  1,
		QueueDeadline:      15 * time.Millisecond,
		MaxQueuedPerTenant: 1,
		FavoredWeight:      8,
		FavoredClients:     2,
		GreedyClients:      12,
		FavoredQueries:     64,
		GreedyQueries:      16,
		FavoredShedRetries: 8,
		GreedyShedRetries:  0,
		BreakerThreshold:   3,
		BreakerCooldown:    10 * time.Millisecond,
	}
}

// StormResult is the outcome of one StormSweep: an unloaded baseline phase
// (greedy clients idle) followed by the storm itself.
type StormResult struct {
	// BaselineSeconds and StormSeconds are the two phases' exchange times.
	BaselineSeconds, StormSeconds float64
	// UnloadedP99 is the favored tenant's admitted-query p99 with the
	// greedy tenant idle; FavoredP99 and GreedyP99 are the storm-phase
	// per-tenant p99s (admitted queries only, exact order statistics).
	UnloadedP99, FavoredP99, GreedyP99 time.Duration
	// Issued/Admitted/Shed count each tenant's storm-phase queries: every
	// issued query either returned data (admitted) or failed with a typed
	// overload/breaker error (shed) — anything else is a trial error.
	FavoredIssued, FavoredAdmitted, FavoredShed int
	GreedyIssued, GreedyAdmitted, GreedyShed    int
	// Identical reports that every admitted query of both phases returned
	// bit-exact data (validated against the synthetic ground truth).
	Identical bool
	// Serve is the summed producer-side stats of the storm phase (Shed,
	// Queued; QueueP99 is the max across producer ranks).
	Serve core.ServeStats
	// Query is the summed consumer-side stats of the storm phase (Sheds,
	// BreakerOpens, Retries, ...).
	Query core.QueryStats
	// PoolPeak is the chunk pool's peak outstanding count observed during
	// the storm, PoolLimit its byte-budget bound in chunks, PoolFinal the
	// outstanding count after the storm drained (leaked frames if > 0),
	// and PoolOverflow the over-budget fallback allocations.
	PoolPeak, PoolLimit, PoolFinal int
	PoolOverflow                   int64
	// QPS is storm-phase issued queries per exchange second; ShedRate is
	// the shed fraction of issued storm queries.
	QPS, ShedRate float64
}

// stormCollector gathers per-tenant closed-loop outcomes across the
// consumer goroutine ranks of one phase.
type stormCollector struct {
	mu        sync.Mutex
	lats      map[string][]time.Duration
	issued    map[string]int
	admitted  map[string]int
	shed      map[string]int
	mismatch  error
	mismatchN int
}

func newStormCollector() *stormCollector {
	return &stormCollector{
		lats:     map[string][]time.Duration{},
		issued:   map[string]int{},
		admitted: map[string]int{},
		shed:     map[string]int{},
	}
}

func (sc *stormCollector) admit(tenant string, lat time.Duration, validation error) {
	sc.mu.Lock()
	sc.issued[tenant]++
	sc.admitted[tenant]++
	sc.lats[tenant] = append(sc.lats[tenant], lat)
	if validation != nil {
		sc.mismatchN++
		if sc.mismatch == nil {
			sc.mismatch = validation
		}
	}
	sc.mu.Unlock()
}

func (sc *stormCollector) refuse(tenant string) {
	sc.mu.Lock()
	sc.issued[tenant]++
	sc.shed[tenant]++
	sc.mu.Unlock()
}

// p99 returns the exact 99th-percentile order statistic of a latency set
// (not a histogram approximation — sweeps assert ratios on this).
func p99(lats []time.Duration) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (99*len(s)+99)/100 - 1 // ceil(0.99 n) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

// isOverloadRefusal classifies a consumer-side read error as an expected
// storm refusal: a typed shed (retry budget exhausted against overloaded
// replies) or a breaker fast-fail. Anything else is a real failure.
func isOverloadRefusal(err error) bool {
	var ov *rpc.OverloadedError
	var br *rpc.BreakerOpenError
	return errors.As(err, &ov) || errors.As(err, &br)
}

// stormPhase is the measured outcome of one storm exchange.
type stormPhase struct {
	seconds  float64
	col      *stormCollector
	serve    core.ServeStats
	query    core.QueryStats
	poolPeak int
	poolEnd  buf.PoolStats
}

// stormExchange runs one producer/favored/greedy workflow. The producers
// write the synthetic file and serve it under admission control with the
// two consumer tasks registered as weighted tenants; each consumer rank is
// a closed-loop client issuing its seeded zipf query sequence against
// /group1/grid and validating every admitted response in place. greedyLoad
// false keeps the greedy clients connected but idle (the unloaded
// baseline). The shared chunk pool is sampled throughout for its peak
// outstanding count.
func (c Config) stormExchange(spec workload.Spec, st workload.StormSpec, tune StormTuning, greedyLoad bool) (stormPhase, error) {
	fs := pfs.New(c.FS)
	if c.Metrics != nil {
		fs.SetMetrics(c.Metrics)
	}
	rec := &Recorder{}
	var errs errCollector
	col := newStormCollector()
	dims := spec.GridDims()

	var smu sync.Mutex
	var serve core.ServeStats
	addServe := func(s core.ServeStats) {
		smu.Lock()
		serve.DataQueries += s.DataQueries
		serve.BytesServed += s.BytesServed
		serve.ChunksServed += s.ChunksServed
		serve.Shed += s.Shed
		serve.Queued += s.Queued
		if s.QueueP99 > serve.QueueP99 {
			serve.QueueP99 = s.QueueP99
		}
		smu.Unlock()
	}
	var qmu sync.Mutex
	var query core.QueryStats
	addQuery := func(qs core.QueryStats) {
		qmu.Lock()
		query.MetadataFetches += qs.MetadataFetches
		query.BoxQueries += qs.BoxQueries
		query.DataQueries += qs.DataQueries
		query.BytesFetched += qs.BytesFetched
		query.ChunksFetched += qs.ChunksFetched
		query.Retries += qs.Retries
		query.Sheds += qs.Sheds
		query.BreakerOpens += qs.BreakerOpens
		qmu.Unlock()
	}

	// Sample the shared chunk pool while the storm runs: admission must
	// keep the transport under its byte budget, so the peak outstanding
	// count is an assertion input, not just a curiosity.
	pool := buf.SharedPool(c.ChunkBytes)
	stop := make(chan struct{})
	peakc := make(chan int, 1)
	go func() {
		peak := 0
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				peakc <- peak
				return
			case <-tick.C:
				if o := pool.Outstanding(); o > peak {
					peak = o
				}
			}
		}
	}()

	// consumer builds one tenant's closed-loop client main.
	consumer := func(tenant string, queries int, shedRetries, brkThreshold int) func(p *mpi.Proc) {
		return func(p *mpi.Proc) {
			r := p.Task.Rank()
			vol := core.NewDistMetadataVOL(p.Task, native.New(native.PFSBackend(fs)))
			vol.SetIntercomm("*", p.Intercomm("producer"))
			// Fail-stop clients (no per-attempt timeout): a storm must be
			// survived by admission control and the breaker alone, and any
			// wedge shows up as a watchdog panic rather than being papered
			// over by retries.
			vol.ShedRetries = shedRetries
			vol.BreakerThreshold = brkThreshold
			vol.BreakerCooldown = tune.BreakerCooldown
			vol.ChunkBytes = c.ChunkBytes
			c.instrument(vol, true)
			fapl := h5.NewFileAccessProps(vol)
			stc := st
			stc.QueriesPerClient = queries
			boxes := stc.Queries(dims, tenant, r)
			p.World.Barrier()
			rec.Start()
			f, err := h5.OpenFile("storm.h5", fapl)
			if err != nil {
				errs.add(err)
				return
			}
			ds, err := f.OpenDataset("group1/grid")
			if err != nil {
				errs.add(err)
				errs.add(f.Close())
				return
			}
			for _, box := range boxes {
				sel := h5.NewSimple(dims...)
				if err := sel.SelectBox(h5.SelectSet, box); err != nil {
					errs.add(err)
					break
				}
				out := make([]uint64, sel.NumSelected())
				t0 := time.Now()
				err := ds.Read(nil, sel, h5.Bytes(out))
				lat := time.Since(t0)
				if err != nil {
					if isOverloadRefusal(err) {
						col.refuse(tenant)
						continue
					}
					errs.add(fmt.Errorf("storm %s client %d: %w", tenant, r, err))
					break
				}
				col.admit(tenant, lat, workload.ValidateGrid(dims, box, out))
			}
			errs.add(ds.Close())
			errs.add(f.Close())
			addQuery(vol.QueryStats())
			p.World.Barrier()
			rec.Stop()
		}
	}

	greedyQueries := 0
	if greedyLoad {
		greedyQueries = tune.GreedyQueries
	}
	opts := append(c.mpiOpts(), mpi.WithWatchdog(faultWatchdog))
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "producer", Procs: spec.Producers, Main: func(p *mpi.Proc) {
			gridVals, partVals := workload.GenerateProducer(spec, p.Task.Rank())
			vol := core.NewDistMetadataVOL(p.Task, native.New(native.PFSBackend(fs)))
			icF := p.Intercomm("favored")
			icG := p.Intercomm("greedy")
			vol.SetIntercomm("*", icF, icG)
			vol.SetTenant(icF, "favored")
			vol.SetTenant(icG, "greedy")
			vol.MaxInflightServes = tune.MaxInflightServes
			vol.TenantWeights = map[string]int{"favored": tune.FavoredWeight, "greedy": 1}
			vol.QueueDeadline = tune.QueueDeadline
			vol.MaxQueuedPerTenant = tune.MaxQueuedPerTenant
			vol.ChunkBytes = c.ChunkBytes
			c.instrument(vol, false)
			// Producer-side shed records ("shed-<reason>") go to the same
			// flight recorder the consumers use, so a sweep-failure dump
			// shows both halves of every refusal.
			vol.Flight = c.Flight
			fapl := h5.NewFileAccessProps(vol)
			p.World.Barrier()
			rec.Start()
			f, err := h5.CreateFile("storm.h5", fapl)
			if err != nil {
				errs.add(err)
				return
			}
			errs.add(workload.WriteSynthetic(f, spec, p.Task.Rank(), gridVals, partVals))
			errs.add(f.Close()) // index + serve under admission
			addServe(vol.Stats())
			p.World.Barrier()
			rec.Stop()
		}},
		{Name: "favored", Procs: tune.FavoredClients,
			Main: consumer("favored", tune.FavoredQueries, tune.FavoredShedRetries, 0)},
		{Name: "greedy", Procs: tune.GreedyClients,
			Main: consumer("greedy", greedyQueries, tune.GreedyShedRetries, tune.BreakerThreshold)},
	}, opts...)
	close(stop)
	peak := <-peakc
	if err == nil {
		err = errs.first()
	}
	return stormPhase{
		seconds:  rec.Seconds(),
		col:      col,
		serve:    serve,
		query:    query,
		poolPeak: peak,
		poolEnd:  pool.Stats(),
	}, err
}

// StormSweep runs the unloaded baseline (greedy tenant connected but idle)
// and then the query storm, and folds both phases into one result. The
// caller asserts on the result; FailureReasons lists the standard contract.
func (c Config) StormSweep(spec workload.Spec, st workload.StormSpec, tune StormTuning) (StormResult, error) {
	c.setStatus("sweep", "storm: baseline")
	base, err := c.stormExchange(spec, st, tune, false)
	if err != nil {
		return StormResult{}, fmt.Errorf("harness: storm baseline failed: %w", err)
	}
	if n := base.col.admitted["favored"]; n == 0 {
		return StormResult{}, fmt.Errorf("harness: storm baseline admitted no favored queries")
	}
	c.setStatus("sweep", "storm: load")
	storm, err := c.stormExchange(spec, st, tune, true)
	if err != nil {
		return StormResult{}, fmt.Errorf("harness: storm phase failed: %w", err)
	}
	col := storm.col
	issued := col.issued["favored"] + col.issued["greedy"]
	res := StormResult{
		BaselineSeconds: base.seconds,
		StormSeconds:    storm.seconds,
		UnloadedP99:     p99(base.col.lats["favored"]),
		FavoredP99:      p99(col.lats["favored"]),
		GreedyP99:       p99(col.lats["greedy"]),
		FavoredIssued:   col.issued["favored"],
		FavoredAdmitted: col.admitted["favored"],
		FavoredShed:     col.shed["favored"],
		GreedyIssued:    col.issued["greedy"],
		GreedyAdmitted:  col.admitted["greedy"],
		GreedyShed:      col.shed["greedy"],
		Identical:       base.col.mismatch == nil && col.mismatch == nil,
		Serve:           storm.serve,
		Query:           storm.query,
		PoolPeak:        storm.poolPeak,
		PoolLimit:       buf.SharedPool(c.ChunkBytes).Limit(),
		PoolFinal:       storm.poolEnd.Outstanding,
		PoolOverflow:    storm.poolEnd.Overflow,
	}
	if storm.seconds > 0 {
		res.QPS = float64(issued) / storm.seconds
	}
	if issued > 0 {
		res.ShedRate = float64(res.FavoredShed+res.GreedyShed) / float64(issued)
	}
	c.logf("storm: qps=%.1f shed_rate=%.2f unloaded_p99=%s favored_p99=%s greedy_p99=%s shed=%d breaker_opens=%d pool_peak=%d/%d\n",
		res.QPS, res.ShedRate, res.UnloadedP99, res.FavoredP99, res.GreedyP99,
		res.Serve.Shed, res.Query.BreakerOpens, res.PoolPeak, res.PoolLimit)
	return res, nil
}

// FailureReasons checks the storm contract and returns one line per
// violated clause (empty means the sweep passed). p99Factor bounds the
// favored tenant's storm p99 as a multiple of its unloaded p99.
func (r StormResult) FailureReasons(p99Factor float64) []string {
	var out []string
	if !r.Identical {
		out = append(out, "an admitted query returned data differing from the synthetic ground truth")
	}
	if r.FavoredAdmitted == 0 {
		out = append(out, "favored tenant had no admitted queries")
	}
	if r.Serve.Shed == 0 {
		out = append(out, "producers shed nothing: the storm never saturated admission")
	}
	if r.Query.Sheds == 0 {
		out = append(out, "consumers saw no overloaded replies")
	}
	if r.Query.BreakerOpens == 0 {
		out = append(out, "no circuit breaker ever opened on the greedy side")
	}
	if r.GreedyShed == 0 {
		out = append(out, "greedy tenant was never throttled")
	}
	if lim := time.Duration(p99Factor * float64(r.UnloadedP99)); r.UnloadedP99 > 0 && r.FavoredP99 > lim {
		out = append(out, fmt.Sprintf("favored p99 %s exceeds %.0fx unloaded p99 %s",
			r.FavoredP99, p99Factor, r.UnloadedP99))
	}
	if r.PoolLimit > 0 && r.PoolPeak > r.PoolLimit {
		out = append(out, fmt.Sprintf("chunk pool peaked at %d outstanding, over its budget of %d",
			r.PoolPeak, r.PoolLimit))
	}
	if r.PoolFinal != 0 {
		out = append(out, fmt.Sprintf("%d chunks still outstanding after the storm drained (leak)", r.PoolFinal))
	}
	return out
}

// PrintStormTable renders a storm result as an aligned text report.
func PrintStormTable(w io.Writer, r StormResult) {
	fmt.Fprintf(w, "Query storm: admission control and load shedding under saturation\n")
	fmt.Fprintf(w, "%-10s %8s %8s %8s %12s %12s\n", "tenant", "issued", "admitted", "shed", "p99", "unloaded")
	fmt.Fprintf(w, "%-10s %8d %8d %8d %12s %12s\n", "favored",
		r.FavoredIssued, r.FavoredAdmitted, r.FavoredShed,
		r.FavoredP99.Round(time.Microsecond), r.UnloadedP99.Round(time.Microsecond))
	fmt.Fprintf(w, "%-10s %8d %8d %8d %12s %12s\n", "greedy",
		r.GreedyIssued, r.GreedyAdmitted, r.GreedyShed,
		r.GreedyP99.Round(time.Microsecond), "-")
	fmt.Fprintf(w, "qps=%.1f shed_rate=%.3f server_shed=%d queued=%d queue_p99=%s client_sheds=%d breaker_opens=%d\n",
		r.QPS, r.ShedRate, r.Serve.Shed, r.Serve.Queued,
		r.Serve.QueueP99.Round(time.Microsecond), r.Query.Sheds, r.Query.BreakerOpens)
	fmt.Fprintf(w, "pool: peak=%d limit=%d final=%d overflow=%d\n",
		r.PoolPeak, r.PoolLimit, r.PoolFinal, r.PoolOverflow)
}
