package harness

import (
	"os"
	"testing"

	"lowfive/internal/rankmain"
)

// TestMain intercepts re-execs of this test binary: SockSmoke spawns one
// child process per world rank, and each child must run its rank instead
// of the test suite.
func TestMain(m *testing.M) {
	rankmain.ChildFromEnv()
	os.Exit(m.Run())
}

// TestSockSmokeClean runs the producer→consumer workload as separate OS
// processes over Unix sockets and checks the consumer data is
// bit-identical to the in-proc chan-engine run.
func TestSockSmokeClean(t *testing.T) {
	c := QuickConfig()
	c.Transport = TransportSock
	results, err := c.SockSmoke([]SockCase{
		{Name: "clean/unix", Network: "unix", KillRank: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !results[0].Identical {
		t.Fatalf("clean unix case not identical: %+v", results)
	}
}

// TestSockSmokeKillRestart is the end-to-end restart case: a producer
// rank process is SIGKILLed mid-stream and respawned with a bumped
// incarnation; the coordinator's death and rejoin broadcasts drive the
// supervision machinery in every peer, the respawned producer re-sends,
// and the consumers still converge to the bit-identical digests.
func TestSockSmokeKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process kill/restart case skipped in -short")
	}
	c := QuickConfig()
	c.Transport = TransportSock
	results, err := c.SockSmoke([]SockCase{
		{Name: "kill-producer/unix", Network: "unix", KillRank: 0, KillAfter: defaultSockCaseKillAfter},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Restarts != 1 {
		t.Fatalf("expected 1 restart, got %d", r.Restarts)
	}
	if !r.Identical {
		t.Fatalf("post-restart consumer data not identical: %+v", r)
	}
}

// TestSockSmokeTCP covers the TCP flavor of the rendezvous and framing.
func TestSockSmokeTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process tcp case skipped in -short")
	}
	c := QuickConfig()
	c.Transport = TransportSock
	results, err := c.SockSmoke([]SockCase{
		{Name: "clean/tcp", Network: "tcp", KillRank: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Identical {
		t.Fatalf("tcp case not identical: %+v", results[0])
	}
}
