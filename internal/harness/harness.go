// Package harness drives the paper's experiments: it builds the synthetic
// producer/consumer workflows for each transport, times the exchange
// sections, sweeps the weak-scaling process counts, and formats each result
// as the table or figure the paper reports.
package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"lowfive/internal/pfs"
	"lowfive/metrics"
)

// Config scales the experiments. The paper runs 4–16384 MPI processes with
// 10^6 grid points and particles per producer on Cray XC40s; the defaults
// here reproduce the shapes at laptop scale.
type Config struct {
	// Scales are the total process counts of the weak-scaling sweep
	// (3/4 producers, 1/4 consumers, as in Table I).
	Scales []int
	// LargeScales are the process counts for the large-data experiment
	// (Fig. 11), usually capped lower because the data is 10x bigger.
	LargeScales []int
	// ScaleFactor divides the paper's per-producer element counts (10^6).
	ScaleFactor int64
	// LargeFactor divides the paper's large-data counts (10^7, Fig. 11).
	LargeFactor int64
	// Trials is the number of runs averaged per point (3 in the paper).
	Trials int
	// NetAlpha/NetBeta are the interconnect cost model (per-message latency
	// and bytes/second).
	NetAlpha time.Duration
	NetBeta  float64
	// FS configures the simulated parallel file system for file-mode runs.
	FS pfs.Options
	// ChunkBytes is the frame size of the streamed data plane in every
	// trial's producer VOLs; zero keeps the transport default (1 MiB).
	// Small values force multi-frame streams, which the fault sweep uses
	// to hit mid-stream chunks.
	ChunkBytes int
	// Metrics, when set, threads one shared registry through every trial:
	// the simulated MPI worlds record per-link traffic, the distributed
	// VOLs record query/serve latency and the rpc.* instruments, the chunk
	// pool publishes its gauges and the simulated PFS its per-OST latency.
	Metrics *metrics.Registry
	// Flight, when set, is handed to every consumer VOL: data queries over
	// the recorder's threshold land in its ring with a per-phase breakdown.
	Flight *metrics.FlightRecorder
	// DebugAddr is the listen address EnableDebug serves live metrics on
	// (e.g. ":8080" or "127.0.0.1:0").
	DebugAddr string
	// Transport selects the message engine: TransportChan (in-proc,
	// cost-modeled — the default, and what every simulation sweep uses) or
	// TransportSock (real sockets, one OS process per rank — exercised by
	// SockSmoke). Empty means TransportChan.
	Transport string
	// Verbose prints each trial as it completes.
	Verbose bool
	// Log receives progress output when Verbose is set.
	Log io.Writer

	// debug is the live server started by EnableDebug; sweeps publish their
	// current case to its /stats endpoint.
	debug *metrics.DebugServer
}

// DefaultSlowQuery is the flight-recorder threshold EnableDebug installs
// when no recorder was configured: an order of magnitude above a healthy
// cost-modeled query, so only genuinely troubled queries are retained.
const DefaultSlowQuery = 50 * time.Millisecond

// EnableDebug starts the live introspection server on c.DebugAddr,
// creating the registry and flight recorder first if the caller did not
// provide them. It returns the address actually listening (useful with
// ":0") and the server for Close. Trials started after this call record
// into the served registry.
func (c *Config) EnableDebug() (string, *metrics.DebugServer, error) {
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	if c.Flight == nil {
		c.Flight = metrics.NewFlightRecorder(256, DefaultSlowQuery)
	}
	srv := metrics.NewDebugServer(c.Metrics, c.Flight)
	addr, err := srv.Start(c.DebugAddr)
	if err != nil {
		return "", nil, err
	}
	c.debug = srv
	return addr, srv, nil
}

// setStatus publishes a live status line (current sweep case, trial, scale)
// to the debug server's /stats endpoint; a no-op when EnableDebug was not
// called.
func (c Config) setStatus(key, value string) {
	if c.debug != nil {
		c.debug.SetStatus(key, func() any { return value })
	}
}

// DefaultConfig returns a configuration that finishes in minutes on a
// laptop while preserving the paper's qualitative results.
func DefaultConfig() Config {
	return Config{
		Scales:      []int{4, 16, 64, 256},
		LargeScales: []int{4, 16, 64},
		ScaleFactor: 10, // 10^5 grid points + particles per producer
		LargeFactor: 1,  // the paper's full 10^6/10^7 per-producer sizing
		Trials:      3,
		// The interconnect model runs ~1000x slower than a real Cray Aries
		// (2 ms latency, 50 MB/s links) so that every delay is resolvable
		// by the host's sleep granularity and concurrent delays overlap;
		// the file-system model is scaled by the same factor, so all
		// transport ratios remain meaningful.
		NetAlpha:  2 * time.Millisecond,
		NetBeta:   50e6,
		FS:        pfs.DefaultOptions(),
		Transport: TransportChan,
	}
}

// QuickConfig is a minimal configuration for tests and smoke runs.
func QuickConfig() Config {
	c := DefaultConfig()
	c.Scales = []int{4, 16}
	c.ScaleFactor = 1000
	c.LargeFactor = 1000
	c.Trials = 1
	c.NetAlpha = 2 * time.Millisecond
	c.NetBeta = 200e6
	c.FS = pfs.Options{
		NumOSTs: 4, StripeSize: 64 << 10, OSTBandwidth: 50e6,
		OSTLatency: 2 * time.Millisecond, SharedLockLatency: 200 * time.Microsecond,
	}
	return c
}

func (c Config) logf(format string, args ...any) {
	if c.Verbose && c.Log != nil {
		fmt.Fprintf(c.Log, format, args...)
	}
}

// Recorder measures one exchange section across the goroutine ranks of a
// workflow: every participating rank calls Start after the pre-exchange
// barrier and Stop after the post-exchange barrier; the recorded interval
// is [earliest Start, latest Stop].
type Recorder struct {
	mu      sync.Mutex
	t0, t1  time.Time
	started bool
}

// Start records the earliest start time.
func (r *Recorder) Start() {
	now := time.Now()
	r.mu.Lock()
	if !r.started || now.Before(r.t0) {
		r.t0 = now
		r.started = true
	}
	r.mu.Unlock()
}

// Stop records the latest stop time.
func (r *Recorder) Stop() {
	now := time.Now()
	r.mu.Lock()
	if now.After(r.t1) {
		r.t1 = now
	}
	r.mu.Unlock()
}

// Seconds returns the measured interval.
func (r *Recorder) Seconds() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.started || r.t1.Before(r.t0) {
		return 0
	}
	return r.t1.Sub(r.t0).Seconds()
}

// Point is one measurement of a weak-scaling series.
type Point struct {
	Procs   int
	Seconds float64
}

// Series is one line of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is one of the paper's plots, reproduced as a text table.
type Figure struct {
	ID     string // e.g. "Figure 5"
	Title  string
	Series []Series
}

// Print renders the figure as an aligned table, one row per process count,
// one column per series.
func (f Figure) Print(w io.Writer) {
	fmt.Fprintf(w, "%s: %s\n", f.ID, f.Title)
	procs := map[int]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			procs[p.Procs] = true
		}
	}
	var order []int
	for p := range procs {
		order = append(order, p)
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if order[j] < order[i] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	fmt.Fprintf(w, "%-10s", "procs")
	for _, s := range f.Series {
		fmt.Fprintf(w, " %22s", s.Name)
	}
	fmt.Fprintln(w)
	for _, pc := range order {
		fmt.Fprintf(w, "%-10d", pc)
		for _, s := range f.Series {
			v := math.NaN()
			for _, p := range s.Points {
				if p.Procs == pc {
					v = p.Seconds
				}
			}
			if math.IsNaN(v) {
				fmt.Fprintf(w, " %22s", "-")
			} else {
				fmt.Fprintf(w, " %20.4fs", v)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, strings.Repeat("-", 10+24*len(f.Series)))
}

// average runs fn Trials times and averages the timings.
func (c Config) average(fn func() (float64, error)) (float64, error) {
	sum := 0.0
	for i := 0; i < c.Trials; i++ {
		v, err := fn()
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return sum / float64(c.Trials), nil
}

// newRecorders builds one recorder per phase of a multi-phase measurement
// (e.g. per snapshot), so time between phases is not counted.
func newRecorders(n int) []*Recorder {
	out := make([]*Recorder, n)
	for i := range out {
		out[i] = &Recorder{}
	}
	return out
}

// sumSeconds totals the per-phase intervals.
func sumSeconds(recs []*Recorder) float64 {
	s := 0.0
	for _, r := range recs {
		s += r.Seconds()
	}
	return s
}

// WriteCSV emits the figure as CSV: a procs column plus one column per
// series, for plotting with external tools.
func (f Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"procs"}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	procs := map[int]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			procs[p.Procs] = true
		}
	}
	var order []int
	for p := range procs {
		order = append(order, p)
	}
	sort.Ints(order)
	for _, pc := range order {
		row := []string{strconv.Itoa(pc)}
		for _, s := range f.Series {
			cell := ""
			for _, p := range s.Points {
				if p.Procs == pc {
					cell = strconv.FormatFloat(p.Seconds, 'f', 6, 64)
				}
			}
			row = append(row, cell)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
