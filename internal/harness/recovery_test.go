package harness

import (
	"errors"
	"testing"

	"lowfive/internal/rpc"
	"lowfive/mpi"
	"lowfive/workflow"
)

func TestRecoveryTrialSweepBitIdentical(t *testing.T) {
	// The acceptance sweep: a producer rank crashed mid-epoch, a producer
	// rank hung mid-epoch (heartbeat detection), and a crash under ambient
	// message loss. Every case must restart the task exactly once, recover
	// completed epochs from the checkpoint containers, and deliver the
	// consumers bit-identical data. Small chunks make data responses
	// multi-frame streams, so teardown also has in-flight frames to purge.
	c := QuickConfig()
	c.ChunkBytes = 2 << 10
	cases := DefaultRecoveryCases(20260806)
	results, err := c.RecoverySweep(cases)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(cases) {
		t.Fatalf("sweep produced %d results for %d cases", len(results), len(cases))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("case %s: %v", r.Name, r.Err)
			continue
		}
		if !r.Identical {
			t.Errorf("case %s: consumer data differs from the fault-free baseline", r.Name)
		}
		if r.Stats.RestartCount != 1 {
			t.Errorf("case %s: %d restarts, want exactly 1", r.Name, r.Stats.RestartCount)
		}
		if len(r.Stats.Failures) == 0 || r.Stats.Failures[0].Task != "producer" {
			t.Errorf("case %s: failures %+v, want the producer task first", r.Name, r.Stats.Failures)
		}
		if cases[i].WantHung && r.Stats.HungDetected == 0 {
			t.Errorf("case %s: hang not detected by heartbeat", r.Name)
		}
		if r.Stats.RecoveredEpochs == 0 || r.Stats.Reindexed == 0 {
			t.Errorf("case %s: recovered epochs=%d reindexed=%d — restart did not rejoin any checkpoint",
				r.Name, r.Stats.RecoveredEpochs, r.Stats.Reindexed)
		}
		// The torn-down incarnation's in-flight frames must have been
		// released back to the pool, not leaked.
		if r.Pool.Outstanding != 0 {
			t.Errorf("case %s: %d chunks still outstanding after the run (gets=%d high water=%d)",
				r.Name, r.Pool.Outstanding, r.Pool.Gets, r.Pool.HighWater)
		}
	}
}

func TestRecoveryTrialFailFastTypedFailure(t *testing.T) {
	// Under FailFast the same crash must surface as the run's error: a typed
	// *mpi.TaskFailure naming the task, rank and epoch.
	c := QuickConfig()
	plan := mpi.FaultPlan{Seed: 7, Rules: []mpi.FaultRule{
		{Action: mpi.FaultCrash, Rank: 0, Tag: rpc.TagResponse, After: 10, Count: 1},
	}}
	_, _, _, _, err := c.recoveryExchange(&plan, workflow.Policy{Mode: workflow.FailFast})
	var f *mpi.TaskFailure
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *mpi.TaskFailure", err)
	}
	if f.Task != "producer" || f.Rank != 0 {
		t.Fatalf("TaskFailure %+v, want task producer rank 0", f)
	}
	if f.Epoch < 0 || f.Epoch >= recoveryEpochs {
		t.Fatalf("TaskFailure epoch = %d, want within [0,%d)", f.Epoch, recoveryEpochs)
	}
}
