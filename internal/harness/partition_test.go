package harness

import (
	"testing"
	"time"

	"lowfive/internal/rpc"
	"lowfive/mpi"
)

// partitionConfig is the sweep configuration shared by the partition
// trials: small chunks so every data response is a multi-frame stream (a
// partition window can then really cut a stream in half), quick scale.
func partitionConfig() Config {
	c := QuickConfig()
	c.ChunkBytes = 2 << 10
	return c
}

func TestPartitionTrialSweep(t *testing.T) {
	// The acceptance sweep: a straggling producer, an unhealed asymmetric
	// partition, a partition that heals mid-exchange, and a throttled link.
	// Every case must end bit-identical to the fault-free baseline, and
	// each case's defense assertions (hedge wins, straggler demotions, no
	// file fallbacks, wall-time bound) are folded into its Err.
	c := partitionConfig()
	spec := faultSpec(t)
	cases := DefaultPartitionCases(20250806)
	results, err := c.PartitionSweep(spec, cases)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(cases) {
		t.Fatalf("sweep produced %d results for %d cases", len(results), len(cases))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("case %s: %v", r.Name, r.Err)
			continue
		}
		if !r.Identical {
			t.Errorf("case %s: consumer data differs from the fault-free baseline", r.Name)
		}
	}
}

func TestPartitionTrialSlowProducerHedgeWins(t *testing.T) {
	// A single delayed response from the consumer's metadata partner must be
	// beaten by the hedge: the replica answers while the straggler's
	// response is still in flight, nothing falls back to the file, and the
	// exchange finishes in a small fraction of the timeout path.
	c := partitionConfig()
	spec := faultSpec(t)
	var slow []PartitionCase
	for _, pc := range DefaultPartitionCases(7) {
		if pc.Name == "slow-producer" {
			slow = append(slow, pc)
		}
	}
	if len(slow) != 1 {
		t.Fatal("slow-producer case missing from the default sweep")
	}
	results, err := c.PartitionSweep(spec, slow)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Query.HedgeWins == 0 || r.Query.HedgedCalls == 0 {
		t.Errorf("hedged=%d wins=%d, want the hedge to fire and win", r.Query.HedgedCalls, r.Query.HedgeWins)
	}
	if r.Query.FileFallbacks != 0 {
		t.Errorf("%d file fallbacks for a pure delay fault", r.Query.FileFallbacks)
	}
}

func TestPartitionTrialAsymmetricDemotesStraggler(t *testing.T) {
	// An unhealed asymmetric partition: rank 0 hears requests but its
	// responses vanish. The EWMA must demote it (queries re-route before
	// paying its timeout), hedges must win, and the budgeted calls must keep
	// the exchange well under the flat timeout ladder — the sweep's
	// MaxSeconds assertion is a hard bound far below timeout×(retries+1)
	// per dead call chain.
	c := partitionConfig()
	spec := faultSpec(t)
	var part []PartitionCase
	for _, pc := range DefaultPartitionCases(11) {
		if pc.Name == "asymmetric-partition" {
			part = append(part, pc)
		}
	}
	if len(part) != 1 {
		t.Fatal("asymmetric-partition case missing from the default sweep")
	}
	results, err := c.PartitionSweep(spec, part)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Query.StragglersDemoted == 0 {
		t.Error("no straggler demotions under a sustained partition")
	}
	if r.Query.HedgeWins == 0 {
		t.Error("no hedge wins under a sustained partition")
	}
	flat := (faultCallTimeout * time.Duration(faultCallRetries+1)).Seconds()
	if r.Seconds >= flat {
		t.Errorf("exchange ran %.2fs — no faster than one flat retry ladder (%.2fs)", r.Seconds, flat)
	}
}

func TestPartitionTrialHealedPartitionStaysInMemory(t *testing.T) {
	// A partition shorter than one per-attempt timeout: a stream caught in
	// the window recovers through its own retry after the heal, so no read
	// may degrade to the file transport.
	c := partitionConfig()
	spec := faultSpec(t)
	var heal []PartitionCase
	for _, pc := range DefaultPartitionCases(13) {
		if pc.Name == "healed-partition" {
			heal = append(heal, pc)
		}
	}
	if len(heal) != 1 {
		t.Fatal("healed-partition case missing from the default sweep")
	}
	results, err := c.PartitionSweep(spec, heal)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Query.FileFallbacks != 0 {
		t.Errorf("%d file fallbacks — the healed partition should recover in-memory", r.Query.FileFallbacks)
	}
}

func TestPartitionTrialBudgetZeroKeepsLegacyPath(t *testing.T) {
	// Regression: the untuned exchange (no hedge delay, no budget) must
	// still run the legacy CallAll path and record no hedge traffic, so the
	// message-loss sweep's semantics are unchanged by the tuning refactor.
	c := partitionConfig()
	spec := faultSpec(t)
	_, data, qs, err := c.faultExchangeTuned(spec, &mpi.FaultPlan{Seed: 3, Rules: []mpi.FaultRule{
		{Action: mpi.FaultDrop, Rank: mpi.AnyRank, Tag: rpc.TagRequest, Count: 2},
	}}, faultTuning{})
	if err != nil {
		t.Fatal(err)
	}
	for r, b := range data {
		if len(b) == 0 {
			t.Errorf("consumer %d received no data", r)
		}
	}
	if qs.HedgedCalls != 0 || qs.HedgeWins != 0 || qs.StragglersDemoted != 0 {
		t.Errorf("untuned exchange recorded hedge traffic: %+v", qs)
	}
}
