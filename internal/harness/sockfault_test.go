package harness

import (
	"testing"
)

// TestSockFaultSweep runs the full wire-fault matrix: real rank processes,
// seeded wire-level sabotage (resets, corruption, throttling, a partition
// window, and a SIGKILL stacked on corruption), and bit-identical consumer
// data as the bar. The recovery-counter assertions inside the sweep prove
// the faults landed rather than missed.
func TestSockFaultSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fault sweep skipped in -short")
	}
	c := QuickConfig()
	c.Transport = TransportSock
	results, err := c.SockFaultSweep(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(DefaultSockFaultCases()) {
		t.Fatalf("got %d results, want %d", len(results), len(DefaultSockFaultCases()))
	}
	for _, r := range results {
		if !r.Identical {
			t.Errorf("case %s: consumer data not identical", r.Case)
		}
	}
	// The reset and partition cases guarantee recovery activity; summed
	// across the sweep the counters must show the machinery worked.
	var reconnects, resent int64
	for _, r := range results {
		reconnects += r.Reconnects
		resent += r.ResentFrames
	}
	if reconnects == 0 || resent == 0 {
		t.Fatalf("sweep-wide recovery counters flat: reconnects=%d resent=%d", reconnects, resent)
	}
}
