package harness

import (
	"sync"
	"testing"

	"lowfive/h5"
	"lowfive/internal/core"
	"lowfive/internal/workload"
	"lowfive/metrics"
	"lowfive/mpi"
)

// findSnap returns the snapshot with the given instrument name, or nil.
func findSnap(snaps []metrics.Snapshot, name string) *metrics.Snapshot {
	for i := range snaps {
		if snaps[i].Name == name {
			return &snaps[i]
		}
	}
	return nil
}

// TestMetricsMatchQueryStats runs one full redistribution with the metrics
// plane attached and cross-checks the two accounting systems against each
// other: the RPC client's per-method latency histograms must have recorded
// exactly as many calls as the VOL's QueryStats counters say were issued.
func TestMetricsMatchQueryStats(t *testing.T) {
	c := QuickConfig()
	c.Metrics = metrics.NewRegistry()
	spec, err := c.specFor(4, c.ScaleFactor)
	if err != nil {
		t.Fatal(err)
	}
	var qmu sync.Mutex
	var qs core.QueryStats
	var errs errCollector
	err = mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "producer", Procs: spec.Producers, Main: func(p *mpi.Proc) {
			gridVals, partVals := workload.GenerateProducer(spec, p.Task.Rank())
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("consumer"))
			vol.SetZeroCopy("*", "*")
			c.instrument(vol, false)
			fapl := h5.NewFileAccessProps(vol)
			f, err := h5.CreateFile("m.h5", fapl)
			if err != nil {
				errs.add(err)
				return
			}
			errs.add(workload.WriteSynthetic(f, spec, p.Task.Rank(), gridVals, partVals))
			errs.add(f.Close())
		}},
		{Name: "consumer", Procs: spec.Consumers, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("producer"))
			c.instrument(vol, true)
			fapl := h5.NewFileAccessProps(vol)
			f, err := h5.OpenFile("m.h5", fapl)
			if err != nil {
				errs.add(err)
				return
			}
			_, _, err = workload.ReadConsumer(f, spec, p.Task.Rank())
			errs.add(err)
			errs.add(f.Close())
			v := vol.QueryStats()
			qmu.Lock()
			qs.MetadataFetches += v.MetadataFetches
			qs.BoxQueries += v.BoxQueries
			qs.DataQueries += v.DataQueries
			qmu.Unlock()
		}},
	}, c.mpiOpts()...)
	if err == nil {
		err = errs.first()
	}
	if err != nil {
		t.Fatal(err)
	}
	snaps := c.Metrics.Snapshot()
	for _, tc := range []struct {
		hist string
		want int64
	}{
		{"rpc.client.call_us.metadata", qs.MetadataFetches},
		{"rpc.client.call_us.boxes", qs.BoxQueries},
		{"rpc.client.call_us.datastream", qs.DataQueries},
	} {
		s := findSnap(snaps, tc.hist)
		if s == nil {
			t.Fatalf("instrument %q not in registry snapshot", tc.hist)
		}
		if tc.want == 0 {
			t.Fatalf("QueryStats counter for %q is zero — the exchange did not run", tc.hist)
		}
		if s.Count != uint64(tc.want) {
			t.Errorf("%s: histogram count %d, QueryStats says %d calls", tc.hist, s.Count, tc.want)
		}
		if s.Sum <= 0 {
			t.Errorf("%s: histogram sum %d, want > 0", tc.hist, s.Sum)
		}
	}
	// The consumer-side query latency histogram records one entry per
	// dataset read (grid + particles per consumer rank).
	if s := findSnap(snaps, "core.query.latency_us"); s == nil {
		t.Error("core.query.latency_us not in registry snapshot")
	} else if s.Count != uint64(2*spec.Consumers) {
		t.Errorf("core.query.latency_us: count %d, want %d (2 reads per consumer)", s.Count, 2*spec.Consumers)
	}
	// The producers served every query the consumers issued.
	if s := findSnap(snaps, "core.serve.latency_us"); s == nil {
		t.Error("core.serve.latency_us not in registry snapshot")
	} else if s.Count == 0 {
		t.Error("core.serve.latency_us: no serve-side latency recorded")
	}
	// The world recorded traffic on the instrumented links.
	if s := findSnap(snaps, "mpi.send.bytes"); s == nil || s.Value == 0 {
		t.Error("mpi.send.bytes: no per-link traffic recorded")
	}
}
