package harness

import (
	"sync"

	"lowfive/h5"
	"lowfive/internal/core"
	"lowfive/internal/native"
	"lowfive/internal/pfs"
	"lowfive/internal/workload"
	"lowfive/mpi"
	"lowfive/trace"
)

// ProfileStats aggregates the counters of one profiled exchange across all
// ranks: the producers' serve side, the consumers' query side, and the file
// system's per-OST load.
type ProfileStats struct {
	// Serve sums the producer ranks' ServeStats.
	Serve core.ServeStats
	// Query sums the consumer ranks' QueryStats.
	Query core.QueryStats
	// OSTs is the per-OST load of the simulated file system.
	OSTs []pfs.OSTStat
}

// Profile runs one fully instrumented producer–consumer exchange and
// records it into tr. The exchange uses LowFive's "both" mode — the
// producers serve the data in situ over the intercommunicator and
// simultaneously write it through to the simulated parallel file system —
// so a single run exercises, and traces, every layer: mpi sends/recvs and
// collectives, VOL-level dataset operations, the core index/serve/query
// phases, and per-OST file-system requests.
func (c Config) Profile(tr *trace.Tracer, spec workload.Spec) (ProfileStats, error) {
	fs := pfs.New(c.FS)
	fs.SetTracer(tr)
	if c.Metrics != nil {
		fs.SetMetrics(c.Metrics)
	}

	var (
		mu    sync.Mutex
		stats ProfileStats
	)
	var errs errCollector
	opts := append(c.mpiOpts(), mpi.WithTracer(tr))
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "producer", Procs: spec.Producers, Main: func(p *mpi.Proc) {
			gridVals, partVals := workload.GenerateProducer(spec, p.Task.Rank())
			vol := core.NewDistMetadataVOL(p.Task, native.New(native.PFSBackend(fs)))
			vol.SetIntercomm("*", p.Intercomm("consumer"))
			vol.SetPassthru("*", true)
			vol.ChunkBytes = c.ChunkBytes
			c.instrument(vol, false)
			fapl := h5.NewFileAccessProps(h5.NewTracingVOL(vol, p.Task.Track()))
			p.World.Barrier()
			f, err := h5.CreateFile("synthetic.h5", fapl)
			if err != nil {
				errs.add(err)
				return
			}
			errs.add(workload.WriteSynthetic(f, spec, p.Task.Rank(), gridVals, partVals))
			errs.add(f.Close()) // index + serve + file write
			p.World.Barrier()
			s := vol.Stats()
			mu.Lock()
			stats.Serve.MetadataRequests += s.MetadataRequests
			stats.Serve.BoxQueries += s.BoxQueries
			stats.Serve.DataQueries += s.DataQueries
			stats.Serve.BytesServed += s.BytesServed
			stats.Serve.DoneMessages += s.DoneMessages
			stats.Serve.ParkedRequests += s.ParkedRequests
			stats.Serve.ChunksServed += s.ChunksServed
			mu.Unlock()
		}},
		{Name: "consumer", Procs: spec.Consumers, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("producer"))
			c.instrument(vol, true)
			fapl := h5.NewFileAccessProps(h5.NewTracingVOL(vol, p.Task.Track()))
			p.World.Barrier()
			f, err := h5.OpenFile("synthetic.h5", fapl)
			if err != nil {
				errs.add(err)
				return
			}
			gridBuf, partBuf, err := workload.ReadConsumer(f, spec, p.Task.Rank())
			errs.add(err)
			errs.add(f.Close()) // done
			p.World.Barrier()
			if err == nil {
				errs.add(workload.ValidateConsumer(spec, p.Task.Rank(), gridBuf, partBuf))
			}
			q := vol.QueryStats()
			mu.Lock()
			stats.Query.MetadataFetches += q.MetadataFetches
			stats.Query.BoxQueries += q.BoxQueries
			stats.Query.DataQueries += q.DataQueries
			stats.Query.BytesFetched += q.BytesFetched
			stats.Query.WaitTime += q.WaitTime
			stats.Query.ChunksFetched += q.ChunksFetched
			mu.Unlock()
		}},
	}, opts...)
	if err == nil {
		err = errs.first()
	}
	stats.OSTs = fs.OSTStats()
	return stats, err
}
