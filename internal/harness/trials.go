package harness

import (
	"fmt"
	"sync"
	"time"

	"lowfive/h5"
	"lowfive/internal/baselines/bredala"
	"lowfive/internal/baselines/dataspaces"
	"lowfive/internal/baselines/puremp"
	"lowfive/internal/buf"
	"lowfive/internal/core"
	"lowfive/internal/grid"
	"lowfive/internal/native"
	"lowfive/internal/pfs"
	"lowfive/internal/workload"
	"lowfive/mpi"
)

// errCollector gathers the first error raised by any rank of a workflow.
type errCollector struct {
	mu  sync.Mutex
	err error
}

func (e *errCollector) add(err error) {
	if err == nil {
		return
	}
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

func (e *errCollector) first() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

func (c Config) mpiOpts() []mpi.Option {
	opts := []mpi.Option{mpi.WithCostModel(c.NetAlpha, c.NetBeta)}
	if c.Metrics != nil {
		opts = append(opts, mpi.WithMetrics(c.Metrics))
	}
	return opts
}

// instrument threads the harness observability plane into one trial's VOL:
// the shared registry, and (on consumers) the slow-query flight recorder.
// The chunk pool the trial will draw frames from registers its gauges once.
func (c Config) instrument(vol *core.DistMetadataVOL, consumer bool) {
	if c.Metrics == nil {
		return
	}
	vol.Metrics = c.Metrics
	if consumer {
		vol.Flight = c.Flight
	}
	buf.SharedPool(c.ChunkBytes).RegisterMetrics(c.Metrics, "buf.pool")
}

// trialLowFiveMemory measures one in situ exchange through the distributed
// metadata VOL (the "LowFive Memory Mode" series).
func (c Config) trialLowFiveMemory(spec workload.Spec) (float64, error) {
	rec := &Recorder{}
	var errs errCollector
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "producer", Procs: spec.Producers, Main: func(p *mpi.Proc) {
			gridVals, partVals := workload.GenerateProducer(spec, p.Task.Rank())
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("consumer"))
			// The paper's benchmark serves from the original user buffers
			// ("LowFive ... does not allocate additional memory for indexing
			// and serving data"), i.e. shallow copies.
			vol.SetZeroCopy("*", "*")
			vol.ChunkBytes = c.ChunkBytes
			c.instrument(vol, false)
			fapl := h5.NewFileAccessProps(vol)
			p.World.Barrier()
			rec.Start()
			f, err := h5.CreateFile("synthetic.h5", fapl)
			if err != nil {
				errs.add(err)
				return
			}
			errs.add(workload.WriteSynthetic(f, spec, p.Task.Rank(), gridVals, partVals))
			errs.add(f.Close()) // index + serve
			p.World.Barrier()
			rec.Stop()
		}},
		{Name: "consumer", Procs: spec.Consumers, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("producer"))
			c.instrument(vol, true)
			fapl := h5.NewFileAccessProps(vol)
			p.World.Barrier()
			rec.Start()
			f, err := h5.OpenFile("synthetic.h5", fapl)
			if err != nil {
				errs.add(err)
				return
			}
			gridBuf, partBuf, err := workload.ReadConsumer(f, spec, p.Task.Rank())
			errs.add(err)
			errs.add(f.Close()) // done
			p.World.Barrier()
			rec.Stop()
			if err == nil {
				errs.add(workload.ValidateConsumer(spec, p.Task.Rank(), gridBuf, partBuf))
			}
		}},
	}, c.mpiOpts()...)
	if err == nil {
		err = errs.first()
	}
	return rec.Seconds(), err
}

// fileTrial measures a write-to-storage + read-from-storage exchange using
// the given per-rank connector factories (LowFive file mode or pure HDF5).
func (c Config) fileTrial(spec workload.Spec, mkVOL func() h5.Connector) (float64, error) {
	rec := &Recorder{}
	var errs errCollector
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "producer", Procs: spec.Producers, Main: func(p *mpi.Proc) {
			gridVals, partVals := workload.GenerateProducer(spec, p.Task.Rank())
			fapl := h5.NewFileAccessProps(mkVOL())
			p.World.Barrier()
			rec.Start()
			f, err := h5.CreateFile("synthetic.h5", fapl)
			if err != nil {
				errs.add(err)
				return
			}
			errs.add(workload.WriteSynthetic(f, spec, p.Task.Rank(), gridVals, partVals))
			errs.add(f.Close())
			p.World.Barrier() // file now complete on "disk"
			p.World.Barrier() // consumers done reading
			rec.Stop()
		}},
		{Name: "consumer", Procs: spec.Consumers, Main: func(p *mpi.Proc) {
			fapl := h5.NewFileAccessProps(mkVOL())
			p.World.Barrier()
			rec.Start()
			p.World.Barrier() // wait for writers
			f, err := h5.OpenFile("synthetic.h5", fapl)
			if err != nil {
				errs.add(err)
				p.World.Barrier()
				return
			}
			gridBuf, partBuf, err := workload.ReadConsumer(f, spec, p.Task.Rank())
			errs.add(err)
			errs.add(f.Close())
			p.World.Barrier()
			rec.Stop()
			if err == nil {
				errs.add(workload.ValidateConsumer(spec, p.Task.Rank(), gridBuf, partBuf))
			}
		}},
	}, c.mpiOpts()...)
	if err == nil {
		err = errs.first()
	}
	return rec.Seconds(), err
}

// trialLowFiveFile is LowFive in file mode: the full VOL stack with memory
// and passthru both enabled, over the simulated parallel file system.
func (c Config) trialLowFiveFile(spec workload.Spec) (float64, error) {
	fs := pfs.New(c.FS)
	return c.fileTrial(spec, func() h5.Connector {
		vol := core.NewMetadataVOL(native.New(native.PFSBackend(fs)))
		vol.SetPassthru("*", true)
		return vol
	})
}

// trialPureHDF5 writes and reads the container file directly, without the
// LowFive layer (the "Pure HDF5" series of Figure 6).
func (c Config) trialPureHDF5(spec workload.Spec) (float64, error) {
	fs := pfs.New(c.FS)
	return c.fileTrial(spec, func() h5.Connector {
		return native.New(native.PFSBackend(fs))
	})
}

// particleBox returns the [rows, 3] box of a contiguous particle range.
func particleBox(lo, hi int64) grid.Box {
	return grid.Box{Min: []int64{lo, 0}, Max: []int64{hi - 1, 2}}
}

// trialPureMPI measures the hand-written MPI redistribution (Figure 7).
func (c Config) trialPureMPI(spec workload.Spec) (float64, error) {
	rec := &Recorder{}
	var errs errCollector
	totalParts := spec.TotalParticles()
	prodGridBox := func(r int) grid.Box { return spec.ProducerGridBox(r) }
	consGridBox := func(r int) grid.Box { return spec.ConsumerGridBox(r) }
	prodPartBox := func(r int) grid.Box {
		lo, hi := workload.ParticleRange(totalParts, spec.Producers, r)
		return particleBox(lo, hi)
	}
	consPartBox := func(r int) grid.Box {
		lo, hi := workload.ParticleRange(totalParts, spec.Consumers, r)
		return particleBox(lo, hi)
	}
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "producer", Procs: spec.Producers, Main: func(p *mpi.Proc) {
			r := p.Task.Rank()
			gridVals, partVals := workload.GenerateProducer(spec, r)
			ic := p.Intercomm("consumer")
			p.World.Barrier()
			rec.Start()
			puremp.ProducerSend(ic, prodGridBox(r), h5.Bytes(gridVals), 8, consGridBox)
			puremp.ProducerSend(ic, prodPartBox(r), h5.Bytes(partVals), 4, consPartBox)
			p.World.Barrier()
			rec.Stop()
		}},
		{Name: "consumer", Procs: spec.Consumers, Main: func(p *mpi.Proc) {
			r := p.Task.Rank()
			ic := p.Intercomm("producer")
			p.World.Barrier()
			rec.Start()
			gridBuf := puremp.ConsumerRecv(ic, consGridBox(r), 8, prodGridBox)
			partBuf := puremp.ConsumerRecv(ic, consPartBox(r), 4, prodPartBox)
			p.World.Barrier()
			rec.Stop()
			errs.add(workload.ValidateConsumer(spec, r, h5.View[uint64](gridBuf), h5.View[float32](partBuf)))
		}},
	}, c.mpiOpts()...)
	if err == nil {
		err = errs.first()
	}
	return rec.Seconds(), err
}

// trialDataSpaces measures the staging baseline (Figure 8). Server ranks
// are additional resources beyond the producer/consumer counts, as in the
// paper ("we used 4 additional compute nodes for the DataSpaces server").
func (c Config) trialDataSpaces(spec workload.Spec) (float64, error) {
	rec := &Recorder{}
	var errs errCollector
	nsrv := (spec.Producers + spec.Consumers) / 16
	if nsrv < 1 {
		nsrv = 1
	}
	totalParts := spec.TotalParticles()
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "producer", Procs: spec.Producers, Main: func(p *mpi.Proc) {
			r := p.Task.Rank()
			gridVals, partVals := workload.GenerateProducer(spec, r)
			clients := p.World.Split(0, 0)
			pr := dataspaces.NewProducer(p.Intercomm("dsserver"), p.Intercomm("consumer"))
			clients.Barrier()
			rec.Start()
			box := spec.ProducerGridBox(r)
			if !box.IsEmpty() {
				errs.add(pr.PutLocal("grid", 0, box, h5.Bytes(gridVals), 8))
			}
			lo, hi := workload.ParticleRange(totalParts, spec.Producers, r)
			if hi > lo {
				errs.add(pr.PutLocal("particles", 0, particleBox(lo, hi), h5.Bytes(partVals), 4))
			}
			clients.Barrier() // all consumers finished their gets
			rec.Stop()
			pr.Finalize()
		}},
		{Name: "consumer", Procs: spec.Consumers, Main: func(p *mpi.Proc) {
			r := p.Task.Rank()
			clients := p.World.Split(0, 1<<20) // keys after producers
			cons := dataspaces.NewConsumer(p.Intercomm("dsserver"), p.Intercomm("producer"))
			clients.Barrier()
			rec.Start()
			var gridBuf []byte
			box := spec.ConsumerGridBox(r)
			if !box.IsEmpty() {
				b, err := cons.Get("grid", 0, box, 8)
				errs.add(err)
				gridBuf = b
			}
			var partBuf []byte
			lo, hi := workload.ParticleRange(totalParts, spec.Consumers, r)
			if hi > lo {
				b, err := cons.Get("particles", 0, particleBox(lo, hi), 4)
				errs.add(err)
				partBuf = b
			}
			clients.Barrier()
			rec.Stop()
			cons.Finalize()
			errs.add(workload.ValidateConsumer(spec, r, h5.View[uint64](gridBuf), h5.View[float32](partBuf)))
		}},
		{Name: "dsserver", Procs: nsrv, Main: func(p *mpi.Proc) {
			p.World.Split(-1, 0)
			dataspaces.RunServer(p.Task, p.Intercomm("producer"), p.Intercomm("consumer"))
		}},
	}, c.mpiOpts()...)
	if err == nil {
		err = errs.first()
	}
	return rec.Seconds(), err
}

// trialBredala measures the Bredala baseline, returning the grid phase,
// particle phase and total times that Figure 9 plots separately.
func (c Config) trialBredala(spec workload.Spec) (gridSec, partSec float64, err error) {
	recGrid := &Recorder{}
	recPart := &Recorder{}
	var errs errCollector
	dims := spec.GridDims()
	totalParts := spec.TotalParticles()
	err = mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "producer", Procs: spec.Producers, Main: func(p *mpi.Proc) {
			r := p.Task.Rank()
			gridVals, partVals := workload.GenerateProducer(spec, r)
			ic := p.Intercomm("consumer")
			lo, _ := workload.ParticleRange(totalParts, spec.Producers, r)
			gf := &bredala.Field{
				Name: "grid", Policy: bredala.SplitBBox, ElemSize: 8,
				Data: h5.Bytes(gridVals), Box: spec.ProducerGridBox(r), Dims: dims,
			}
			pf := &bredala.Field{
				Name: "particles", Policy: bredala.SplitContiguous, ElemSize: 12,
				Data: h5.Bytes(partVals), GlobalOffset: lo, GlobalCount: totalParts,
			}
			container := &bredala.Container{}
			container.Append(gf)
			container.Append(pf)
			p.World.Barrier()
			recGrid.Start()
			_, e := bredala.RedistributeBBox(ic, true, gf, grid.Box{}, 8, dims)
			errs.add(e)
			p.World.Barrier()
			recGrid.Stop()
			recPart.Start()
			_, e = bredala.RedistributeContiguous(ic, true, pf, 12)
			errs.add(e)
			p.World.Barrier()
			recPart.Stop()
		}},
		{Name: "consumer", Procs: spec.Consumers, Main: func(p *mpi.Proc) {
			r := p.Task.Rank()
			ic := p.Intercomm("producer")
			p.World.Barrier()
			recGrid.Start()
			gf, e := bredala.RedistributeBBox(ic, false, nil, spec.ConsumerGridBox(r), 8, dims)
			errs.add(e)
			p.World.Barrier()
			recGrid.Stop()
			recPart.Start()
			pf, e := bredala.RedistributeContiguous(ic, false, nil, 12)
			errs.add(e)
			p.World.Barrier()
			recPart.Stop()
			if gf != nil && pf != nil {
				errs.add(workload.ValidateConsumer(spec, r, h5.View[uint64](gf.Data), h5.View[float32](pf.Data)))
			}
		}},
	}, c.mpiOpts()...)
	if err == nil {
		err = errs.first()
	}
	return recGrid.Seconds(), recPart.Seconds(), err
}

// specFor builds the scaled workload spec for one total process count.
func (c Config) specFor(totalProcs int, factor int64) (workload.Spec, error) {
	if totalProcs < 4 {
		return workload.Spec{}, fmt.Errorf("harness: need at least 4 processes, got %d", totalProcs)
	}
	return workload.PaperSpec(totalProcs).Scaled(factor), nil
}

// Exported trial entry points for the top-level benchmark suite
// (bench_test.go), one per transport.

// TrialLowFiveMemory runs one in situ exchange and returns its seconds.
func (c Config) TrialLowFiveMemory(spec workload.Spec) (float64, error) {
	return c.trialLowFiveMemory(spec)
}

// TrialLowFiveFile runs one file-mode exchange through the LowFive stack.
func (c Config) TrialLowFiveFile(spec workload.Spec) (float64, error) {
	return c.trialLowFiveFile(spec)
}

// TrialPureHDF5 runs one file exchange without the LowFive layer.
func (c Config) TrialPureHDF5(spec workload.Spec) (float64, error) {
	return c.trialPureHDF5(spec)
}

// TrialPureMPI runs one hand-written MPI redistribution.
func (c Config) TrialPureMPI(spec workload.Spec) (float64, error) {
	return c.trialPureMPI(spec)
}

// TrialDataSpaces runs one staged exchange.
func (c Config) TrialDataSpaces(spec workload.Spec) (float64, error) {
	return c.trialDataSpaces(spec)
}

// TrialBredala runs one Bredala exchange, returning grid and particle times.
func (c Config) TrialBredala(spec workload.Spec) (gridSec, partSec float64, err error) {
	return c.trialBredala(spec)
}

// trialOverlap measures the serve-overlap ablation: a producer publishes
// several snapshots, doing computeTime of work after each; with overlap it
// serves asynchronously during that work, without it each close blocks
// until the consumer is done. Returns the producer-side wall time.
func (c Config) trialOverlap(spec workload.Spec, steps int, computeTime time.Duration, async bool) (float64, error) {
	rec := &Recorder{}
	var errs errCollector
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "producer", Procs: spec.Producers, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("consumer"))
			vol.ServeOnClose = !async
			fapl := h5.NewFileAccessProps(vol)
			buffers := make([][2]interface{}, steps)
			for s := 0; s < steps; s++ {
				g, pv := workload.GenerateProducer(spec, p.Task.Rank())
				buffers[s] = [2]interface{}{g, pv}
			}
			p.World.Barrier()
			rec.Start()
			var pending []*core.ServeHandle
			for s := 0; s < steps; s++ {
				name := fmt.Sprintf("ov%d.h5", s)
				f, err := h5.CreateFile(name, fapl)
				if err != nil {
					errs.add(err)
					return
				}
				g := buffers[s][0].([]uint64)
				pv := buffers[s][1].([]float32)
				errs.add(workload.WriteSynthetic(f, spec, p.Task.Rank(), g, pv))
				errs.add(f.Close())
				if async {
					h, err := vol.ServeAsync(name)
					if err != nil {
						errs.add(err)
						return
					}
					pending = append(pending, h)
				}
				// The next step's "compute", overlappable when async.
				time.Sleep(computeTime)
			}
			for _, h := range pending {
				errs.add(h.Wait())
			}
			rec.Stop()
			p.World.Barrier()
		}},
		{Name: "consumer", Procs: spec.Consumers, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("producer"))
			fapl := h5.NewFileAccessProps(vol)
			p.World.Barrier()
			for s := 0; s < steps; s++ {
				f, err := h5.OpenFile(fmt.Sprintf("ov%d.h5", s), fapl)
				if err != nil {
					errs.add(err)
					return
				}
				_, _, err = workload.ReadConsumer(f, spec, p.Task.Rank())
				errs.add(err)
				errs.add(f.Close())
			}
			p.World.Barrier()
		}},
	}, c.mpiOpts()...)
	if err == nil {
		err = errs.first()
	}
	return rec.Seconds(), err
}
