package harness

import (
	"os"
	"testing"

	"lowfive/internal/workload"
	"lowfive/metrics"
)

// TestStormSweep runs the full query-storm contract: a greedy tenant
// saturates producers that have one serve slot, and the sweep must shed,
// trip breakers, keep the favored tenant's tail bounded, validate every
// admitted byte, and drain the chunk pool. On violation the flight
// recorder is dumped so the failing queries are visible in the test log.
func TestStormSweep(t *testing.T) {
	c := QuickConfig()
	c.ChunkBytes = 4 << 10
	c.Metrics = metrics.NewRegistry()
	c.Flight = metrics.NewFlightRecorder(512, DefaultSlowQuery)
	c.Verbose = testing.Verbose()
	if c.Verbose {
		c.Log = os.Stderr
	}
	spec := workload.Spec{
		Producers: 4, Consumers: 2,
		GridPointsPerProducer: 1000, ParticlesPerProducer: 100,
	}
	st := workload.StormSpec{Seed: 42}
	res, err := c.StormSweep(spec, st, DefaultStormTuning())
	if err != nil {
		c.Flight.WriteText(os.Stderr)
		t.Fatalf("storm sweep: %v", err)
	}
	if reasons := res.FailureReasons(5); len(reasons) > 0 {
		c.Flight.WriteText(os.Stderr)
		PrintStormTable(os.Stderr, res)
		for _, r := range reasons {
			t.Errorf("storm contract: %s", r)
		}
	}
	// The storm metrics surface feeds the bench rows; make sure the
	// admission instruments actually recorded.
	snap := map[string]bool{}
	for _, m := range c.Metrics.Snapshot() {
		snap[m.Name] = true
	}
	for _, name := range []string{
		"core.admission.shed", "core.admission.admitted",
		"rpc.client.sheds", "rpc.client.breaker_opens",
	} {
		if !snap[name] {
			t.Errorf("metric %q not registered during storm", name)
		}
	}
}
