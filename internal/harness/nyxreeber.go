package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"lowfive/h5"
	"lowfive/internal/core"
	"lowfive/internal/grid"
	"lowfive/internal/native"
	"lowfive/internal/nyx"
	"lowfive/internal/pfs"
	"lowfive/internal/plotfile"
	"lowfive/internal/reeber"
	"lowfive/mpi"
)

// UseCaseConfig sizes the Nyx–Reeber reproduction of Table II. The paper
// runs grids 256^3–2048^3 on 4096 Nyx + 1024 Reeber processes and writes
// two snapshots; the defaults scale that to laptop size while keeping the
// 4:1 process ratio and the two-snapshot protocol.
type UseCaseConfig struct {
	// GridSides are the N of the N^3 grids swept (the paper's 256..2048).
	GridSides []int64
	// NyxProcs and ReeberProcs are the task sizes (4096 and 1024 in the paper).
	NyxProcs, ReeberProcs int
	// Steps is the number of snapshots (2 in the paper).
	Steps int
	// Threshold is the halo-finding density threshold.
	Threshold float64
	// PlotfileGroup is how many Nyx ranks share one plotfile.
	PlotfileGroup int
	// FS overrides the harness's file-system model for this use case (the
	// paper ran it on Cori scratch, a busier allocation than the synthetic
	// benchmarks' Theta setup). Nil uses the harness default.
	FS *pfs.Options
}

// DefaultUseCaseConfig returns a laptop-scale Table II setup.
func DefaultUseCaseConfig() UseCaseConfig {
	return UseCaseConfig{
		GridSides:     []int64{32, 64, 128},
		NyxProcs:      16,
		ReeberProcs:   4,
		Steps:         2,
		Threshold:     10,
		PlotfileGroup: 4,
		FS: &pfs.Options{
			NumOSTs:           8,
			StripeSize:        64 << 10,
			OSTBandwidth:      2e6,
			OSTLatency:        2 * time.Millisecond,
			SharedLockLatency: 1 * time.Millisecond,
		},
	}
}

// fsOptions picks the use case's file-system model.
func (u UseCaseConfig) fsOptions(c Config) pfs.Options {
	if u.FS != nil {
		return *u.FS
	}
	return c.FS
}

// TableIIRow is one grid size's measurements.
type TableIIRow struct {
	Side                             int64
	LFWrite, LFRead, H5Write, H5Read float64
	PlotWrite                        float64
	Halos                            int
}

// SpeedupVsHDF5 is the paper's "LowFive vs HDF5" column:
// (HDF5 write + read) / (LowFive write + read).
func (r TableIIRow) SpeedupVsHDF5() float64 {
	return (r.H5Write + r.H5Read) / (r.LFWrite + r.LFRead)
}

// SpeedupVsPlotfiles is the paper's "LowFive vs Plotfiles" column, a lower
// bound that assumes the (unreported) plotfile read time is zero.
func (r TableIIRow) SpeedupVsPlotfiles() float64 {
	return r.PlotWrite / (r.LFWrite + r.LFRead)
}

// TableII runs the three scenarios of the science use case for every grid
// size and returns the rows of Table II. All three transports' halo counts
// are validated to be identical.
func (c Config) TableII(u UseCaseConfig) ([]TableIIRow, error) {
	var rows []TableIIRow
	for _, side := range u.GridSides {
		row := TableIIRow{Side: side}
		params := nyx.DefaultParams(side)
		params.Repack = true // the AMReX writer repacks; zero-copy disabled

		lfW, lfR, halosLF, err := c.useCaseLowFive(u, params)
		if err != nil {
			return rows, fmt.Errorf("LowFive at %d^3: %w", side, err)
		}
		h5W, h5R, halosH5, err := c.useCaseHDF5(u, params)
		if err != nil {
			return rows, fmt.Errorf("HDF5 at %d^3: %w", side, err)
		}
		plW, halosPl, err := c.useCasePlotfiles(u, params)
		if err != nil {
			return rows, fmt.Errorf("plotfiles at %d^3: %w", side, err)
		}
		if halosLF != halosH5 || halosLF != halosPl {
			return rows, fmt.Errorf("halo counts disagree at %d^3: lowfive=%d hdf5=%d plotfiles=%d",
				side, halosLF, halosH5, halosPl)
		}
		if halosLF != params.NumHalos {
			return rows, fmt.Errorf("found %d halos at %d^3, seeded %d", halosLF, side, params.NumHalos)
		}
		row.LFWrite, row.LFRead = lfW, lfR
		row.H5Write, row.H5Read = h5W, h5R
		row.PlotWrite = plW
		row.Halos = halosLF
		c.logf("  %d^3: LF %.3f/%.3f  HDF5 %.3f/%.3f  plot %.3f  halos %d\n",
			side, lfW, lfR, h5W, h5R, plW, halosLF)
		rows = append(rows, row)
	}
	return rows, nil
}

// useCaseLowFive couples Nyx and Reeber in situ through the distributed
// metadata VOL: zero changes to either code — both just get a different
// file-access property list.
func (c Config) useCaseLowFive(u UseCaseConfig, params nyx.Params) (writeSec, readSec float64, halos int, err error) {
	recW := newRecorders(u.Steps)
	recR := newRecorders(u.Steps)
	var errs errCollector
	var firstHalos int
	werr := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "nyx", Procs: u.NyxProcs, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("reeber"))
			fapl := h5.NewFileAccessProps(vol)
			sim, err := nyx.New(params, p.Task)
			if err != nil {
				errs.add(err)
				return
			}
			for step := 0; step < u.Steps; step++ {
				if step > 0 {
					sim.Step()
				}
				name := fmt.Sprintf("plt%05d.h5", step)
				p.Task.Barrier()
				recW[step].Start()
				errs.add(sim.WriteSnapshot(name, fapl)) // close serves Reeber
				p.Task.Barrier()
				recW[step].Stop()
				vol.RemoveFile(name) // snapshot delivered; free the memory
			}
		}},
		{Name: "reeber", Procs: u.ReeberProcs, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("nyx"))
			fapl := h5.NewFileAccessProps(vol)
			for step := 0; step < u.Steps; step++ {
				name := fmt.Sprintf("plt%05d.h5", step)
				p.Task.Barrier()
				recR[step].Start()
				f, err := h5.OpenFile(name, fapl)
				if err != nil {
					errs.add(err)
					return
				}
				dims, box, density, err := reeber.ReadDensity(p.Task, f, nyx.DatasetPath)
				errs.add(err)
				errs.add(f.Close())
				p.Task.Barrier()
				recR[step].Stop()
				// The halo finding itself is analysis, not transport: untimed.
				if err == nil {
					res, ferr := reeber.FindHalos(p.Task, dims, box, density, u.Threshold)
					errs.add(ferr)
					if p.Task.Rank() == 0 && step == 0 {
						firstHalos = res.NumHalos
					}
				}
			}
		}},
	}, c.mpiOpts()...)
	if werr == nil {
		werr = errs.first()
	}
	return sumSeconds(recW), sumSeconds(recR), firstHalos, werr
}

// useCaseHDF5 is the baseline: Nyx saves both snapshots to single shared
// container files on the parallel file system; after Nyx finishes, Reeber
// reads them back.
func (c Config) useCaseHDF5(u UseCaseConfig, params nyx.Params) (writeSec, readSec float64, halos int, err error) {
	fs := pfs.New(u.fsOptions(c))
	recW := newRecorders(u.Steps)
	recR := newRecorders(u.Steps)
	var errs errCollector
	var firstHalos int
	werr := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "nyx", Procs: u.NyxProcs, Main: func(p *mpi.Proc) {
			fapl := h5.NewFileAccessProps(native.New(native.PFSBackend(fs)))
			sim, err := nyx.New(params, p.Task)
			if err != nil {
				errs.add(err)
				return
			}
			for step := 0; step < u.Steps; step++ {
				if step > 0 {
					sim.Step()
				}
				p.Task.Barrier()
				recW[step].Start()
				errs.add(sim.WriteSnapshot(fmt.Sprintf("plt%05d.h5", step), fapl))
				p.Task.Barrier()
				recW[step].Stop()
			}
			p.World.Barrier() // Nyx finished; Reeber may start
		}},
		{Name: "reeber", Procs: u.ReeberProcs, Main: func(p *mpi.Proc) {
			fapl := h5.NewFileAccessProps(native.New(native.PFSBackend(fs)))
			p.World.Barrier() // wait for Nyx
			for step := 0; step < u.Steps; step++ {
				p.Task.Barrier()
				recR[step].Start()
				f, err := h5.OpenFile(fmt.Sprintf("plt%05d.h5", step), fapl)
				if err != nil {
					errs.add(err)
					return
				}
				dims, box, density, err := reeber.ReadDensity(p.Task, f, nyx.DatasetPath)
				errs.add(err)
				errs.add(f.Close())
				p.Task.Barrier()
				recR[step].Stop()
				if err == nil {
					res, ferr := reeber.FindHalos(p.Task, dims, box, density, u.Threshold)
					errs.add(ferr)
					if p.Task.Rank() == 0 && step == 0 {
						firstHalos = res.NumHalos
					}
				}
			}
		}},
	}, c.mpiOpts()...)
	if werr == nil {
		werr = errs.first()
	}
	return sumSeconds(recW), sumSeconds(recR), firstHalos, werr
}

// useCasePlotfiles writes snapshots in the grouped plotfile format. The
// paper excludes the (unoptimized) plotfile read time; for validation the
// Nyx task itself re-reads the files and runs the halo finding, untimed.
func (c Config) useCasePlotfiles(u UseCaseConfig, params nyx.Params) (writeSec float64, halos int, err error) {
	fs := pfs.New(u.fsOptions(c))
	recW := newRecorders(u.Steps)
	var errs errCollector
	var firstHalos int
	werr := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "nyx", Procs: u.NyxProcs, Main: func(p *mpi.Proc) {
			be := native.PFSBackend(fs)
			sim, err := nyx.New(params, p.Task)
			if err != nil {
				errs.add(err)
				return
			}
			dc := simBlocks(params, p.Task.Size())
			for step := 0; step < u.Steps; step++ {
				if step > 0 {
					sim.Step()
				}
				name := fmt.Sprintf("plt%05d", step)
				p.Task.Barrier()
				recW[step].Start()
				errs.add(plotfile.Write(be, name, p.Task, u.PlotfileGroup, sim.Dims(), dc, sim.Field()))
				p.Task.Barrier()
				recW[step].Stop()
				if step == 0 {
					// Untimed validation read + halo finding.
					dims, box, data, err := plotfile.Read(be, name, p.Task)
					errs.add(err)
					if err == nil {
						res, err := reeber.FindHalos(p.Task, dims, box, data, u.Threshold)
						errs.add(err)
						if p.Task.Rank() == 0 {
							firstHalos = res.NumHalos
						}
					}
				}
			}
		}},
	}, c.mpiOpts()...)
	if werr == nil {
		werr = errs.first()
	}
	return sumSeconds(recW), firstHalos, werr
}

// simBlocks returns every rank's block of the Nyx decomposition (all ranks
// can compute it, so plotfile offsets need no communication).
func simBlocks(params nyx.Params, n int) []grid.Box {
	dims := []int64{params.GridSide, params.GridSide, params.GridSide}
	dc := grid.CommonDecomposition(dims, n)
	out := make([]grid.Box, n)
	for i := range out {
		out[i] = dc.Block(i)
	}
	return out
}

// PrintTableII renders rows in the paper's format.
func PrintTableII(w io.Writer, rows []TableIIRow) {
	fmt.Fprintln(w, "Table II: results of Nyx-Reeber use case (timings in seconds)")
	fmt.Fprintf(w, "%-10s %12s %12s %12s %12s %12s %12s %12s %8s\n",
		"data size", "LF write", "LF read", "HDF5 write", "HDF5 read",
		"plot write", "LF/HDF5", "LF/plot", "halos")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12.3f %12.3f %12.3f %12.3f %12.3f %12.2f %12.2f %8d\n",
			fmt.Sprintf("%d^3", r.Side), r.LFWrite, r.LFRead, r.H5Write, r.H5Read,
			r.PlotWrite, r.SpeedupVsHDF5(), r.SpeedupVsPlotfiles(), r.Halos)
	}
}

// WriteTableIICSV emits Table II rows as CSV.
func WriteTableIICSV(w io.Writer, rows []TableIIRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"grid_side", "lf_write_s", "lf_read_s", "hdf5_write_s", "hdf5_read_s",
		"plot_write_s", "speedup_vs_hdf5", "speedup_vs_plotfiles", "halos"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			strconv.FormatInt(r.Side, 10),
			strconv.FormatFloat(r.LFWrite, 'f', 6, 64),
			strconv.FormatFloat(r.LFRead, 'f', 6, 64),
			strconv.FormatFloat(r.H5Write, 'f', 6, 64),
			strconv.FormatFloat(r.H5Read, 'f', 6, 64),
			strconv.FormatFloat(r.PlotWrite, 'f', 6, 64),
			strconv.FormatFloat(r.SpeedupVsHDF5(), 'f', 3, 64),
			strconv.FormatFloat(r.SpeedupVsPlotfiles(), 'f', 3, 64),
			strconv.Itoa(r.Halos),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
