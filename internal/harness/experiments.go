package harness

import (
	"fmt"
	"io"
	"time"

	"lowfive/internal/workload"
)

// sweep runs fn over the configured weak-scaling process counts. A first
// run at the smallest scale is discarded as warmup so the smallest point
// does not absorb one-time allocation and page-fault costs.
func (c Config) sweep(name string, factor int64, fn func(spec workload.Spec) (float64, error)) (Series, error) {
	s := Series{Name: name}
	if len(c.Scales) > 0 {
		if spec, err := c.specFor(c.Scales[0], factor); err == nil {
			if _, err := fn(spec); err != nil {
				return s, fmt.Errorf("%s warmup: %w", name, err)
			}
		}
	}
	for _, procs := range c.Scales {
		spec, err := c.specFor(procs, factor)
		if err != nil {
			return s, err
		}
		avg, err := c.average(func() (float64, error) { return fn(spec) })
		if err != nil {
			return s, fmt.Errorf("%s at %d procs: %w", name, procs, err)
		}
		c.logf("  %-28s procs=%-6d %.4fs\n", name, procs, avg)
		s.Points = append(s.Points, Point{Procs: procs, Seconds: avg})
	}
	return s, nil
}

// Fig5 compares LowFive file mode with LowFive memory mode (weak scaling).
func (c Config) Fig5() (Figure, error) {
	fig := Figure{ID: "Figure 5", Title: "Weak Scaling LowFive File vs Memory Mode (completion time)"}
	file, err := c.sweep("LowFive File Mode", c.ScaleFactor, c.trialLowFiveFile)
	if err != nil {
		return fig, err
	}
	mem, err := c.sweep("LowFive Memory Mode", c.ScaleFactor, c.trialLowFiveMemory)
	if err != nil {
		return fig, err
	}
	fig.Series = []Series{file, mem}
	return fig, nil
}

// Fig6 compares LowFive file mode with pure HDF5 file I/O.
func (c Config) Fig6() (Figure, error) {
	fig := Figure{ID: "Figure 6", Title: "Weak Scaling LowFive File Mode vs. HDF5 (completion time)"}
	lf, err := c.sweep("LowFive File Mode", c.ScaleFactor, c.trialLowFiveFile)
	if err != nil {
		return fig, err
	}
	pure, err := c.sweep("Pure HDF5", c.ScaleFactor, c.trialPureHDF5)
	if err != nil {
		return fig, err
	}
	fig.Series = []Series{lf, pure}
	return fig, nil
}

// Fig7 compares LowFive memory mode with the hand-written MPI code.
func (c Config) Fig7() (Figure, error) {
	fig := Figure{ID: "Figure 7", Title: "Weak Scaling LowFive Memory Mode vs MPI (completion time)"}
	mem, err := c.sweep("LowFive Memory Mode", c.ScaleFactor, c.trialLowFiveMemory)
	if err != nil {
		return fig, err
	}
	pure, err := c.sweep("Pure MPI", c.ScaleFactor, c.trialPureMPI)
	if err != nil {
		return fig, err
	}
	fig.Series = []Series{mem, pure}
	return fig, nil
}

// Fig8 compares LowFive memory mode with the DataSpaces staging service.
func (c Config) Fig8() (Figure, error) {
	fig := Figure{ID: "Figure 8", Title: "Weak Scaling LowFive Memory Mode vs DataSpaces (completion time)"}
	mem, err := c.sweep("LowFive Memory Mode", c.ScaleFactor, c.trialLowFiveMemory)
	if err != nil {
		return fig, err
	}
	ds, err := c.sweep("DataSpaces", c.ScaleFactor, c.trialDataSpaces)
	if err != nil {
		return fig, err
	}
	fig.Series = []Series{mem, ds}
	return fig, nil
}

// Fig9 compares LowFive memory mode with Bredala, decomposing Bredala's
// time into its grid (bounding-box policy) and particle (contiguous
// policy) phases as the paper does.
func (c Config) Fig9() (Figure, error) {
	fig := Figure{ID: "Figure 9", Title: "Weak Scaling LowFive Memory Mode vs Bredala (completion time)"}
	mem, err := c.sweep("LowFive Memory Mode", c.ScaleFactor, c.trialLowFiveMemory)
	if err != nil {
		return fig, err
	}
	total := Series{Name: "Bredala total"}
	gridS := Series{Name: "Bredala grid"}
	partS := Series{Name: "Bredala particles"}
	if len(c.Scales) > 0 {
		if spec, err := c.specFor(c.Scales[0], c.ScaleFactor); err == nil {
			if _, _, err := c.trialBredala(spec); err != nil {
				return fig, fmt.Errorf("bredala warmup: %w", err)
			}
		}
	}
	for _, procs := range c.Scales {
		spec, err := c.specFor(procs, c.ScaleFactor)
		if err != nil {
			return fig, err
		}
		var g, p float64
		_, err = c.average(func() (float64, error) {
			gs, ps, err := c.trialBredala(spec)
			g += gs / float64(c.Trials)
			p += ps / float64(c.Trials)
			return gs + ps, err
		})
		if err != nil {
			return fig, fmt.Errorf("bredala at %d procs: %w", procs, err)
		}
		c.logf("  %-28s procs=%-6d grid=%.4fs particles=%.4fs\n", "Bredala", procs, g, p)
		gridS.Points = append(gridS.Points, Point{Procs: procs, Seconds: g})
		partS.Points = append(partS.Points, Point{Procs: procs, Seconds: p})
		total.Points = append(total.Points, Point{Procs: procs, Seconds: g + p})
	}
	fig.Series = []Series{mem, total, gridS, partS}
	return fig, nil
}

// Fig11 repeats the three fastest transports with 10x larger data.
func (c Config) Fig11() (Figure, error) {
	fig := Figure{ID: "Figure 11", Title: "Weak Scaling LowFive vs DataSpaces vs MPI, Large Data (completion time)"}
	if len(c.LargeScales) > 0 {
		c.Scales = c.LargeScales
	}
	mem, err := c.sweep("LowFive Memory Mode", c.LargeFactor, c.trialLowFiveMemory)
	if err != nil {
		return fig, err
	}
	ds, err := c.sweep("DataSpaces", c.LargeFactor, c.trialDataSpaces)
	if err != nil {
		return fig, err
	}
	pure, err := c.sweep("MPI", c.LargeFactor, c.trialPureMPI)
	if err != nil {
		return fig, err
	}
	fig.Series = []Series{mem, ds, pure}
	return fig, nil
}

// PrintTableI reproduces Table I: process counts and data sizes, both at
// the paper's sizing and at this configuration's scaled sizing.
func (c Config) PrintTableI(w io.Writer) {
	fmt.Fprintln(w, "Table I: number of MPI processes and data sizes for 1 producer and 1 consumer task")
	fmt.Fprintf(w, "%-10s %-10s %-10s %-14s %-14s %-12s %-14s\n",
		"total", "producer", "consumer", "grid pts", "particles", "paper GiB", "scaled MiB")
	paperScales := []int{4, 16, 64, 256, 1024, 4096, 16384}
	for _, total := range paperScales {
		paper := workload.PaperSpec(total)
		scaled := paper.Scaled(c.ScaleFactor)
		fmt.Fprintf(w, "%-10d %-10d %-10d %-14.1e %-14.1e %-12.2f %-14.2f\n",
			total, paper.Producers, paper.Consumers,
			float64(paper.TotalGridPoints()), float64(paper.TotalParticles()),
			float64(paper.TotalBytes())/(1<<30),
			float64(scaled.TotalBytes())/(1<<20))
	}
}

// FigOverlap is an ablation beyond the paper: the producer-side cost of
// serve-on-close (the LowFive default, where each snapshot's close blocks
// until consumed) versus asynchronous serving (the paper's §V-C future
// work), with per-step computation available for overlap.
func (c Config) FigOverlap() (Figure, error) {
	fig := Figure{ID: "Ablation", Title: "Producer wall time: serve-on-close vs asynchronous serve (3 steps, 50 ms compute/step)"}
	const steps = 3
	compute := 50 * time.Millisecond
	sync := Series{Name: "Serve on close"}
	async := Series{Name: "ServeAsync overlap"}
	for _, procs := range c.Scales {
		spec, err := c.specFor(procs, c.ScaleFactor)
		if err != nil {
			return fig, err
		}
		sv, err := c.average(func() (float64, error) { return c.trialOverlap(spec, steps, compute, false) })
		if err != nil {
			return fig, fmt.Errorf("overlap(sync) at %d procs: %w", procs, err)
		}
		av, err := c.average(func() (float64, error) { return c.trialOverlap(spec, steps, compute, true) })
		if err != nil {
			return fig, fmt.Errorf("overlap(async) at %d procs: %w", procs, err)
		}
		c.logf("  overlap procs=%-6d sync=%.4fs async=%.4fs\n", procs, sv, av)
		sync.Points = append(sync.Points, Point{Procs: procs, Seconds: sv})
		async.Points = append(async.Points, Point{Procs: procs, Seconds: av})
	}
	fig.Series = []Series{sync, async}
	return fig, nil
}
