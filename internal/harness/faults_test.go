package harness

import (
	"testing"

	"lowfive/internal/rpc"
	"lowfive/internal/workload"
	"lowfive/mpi"
)

func faultSpec(t *testing.T) workload.Spec {
	t.Helper()
	spec, err := QuickConfig().specFor(4, QuickConfig().ScaleFactor)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestFaultTrialSweepBitIdentical(t *testing.T) {
	// The acceptance sweep: drops, duplication, corruption, delay, a mixed
	// lossy plan, mid-stream chunk loss/corruption, and a producer-rank
	// crash — every case must deliver the consumers bit-identical data via
	// retries, replica failover and the file-transport fallback. Small
	// chunks make every data response a multi-frame stream, so the
	// *-stream-chunk cases really perturb a frame in the middle of one.
	c := QuickConfig()
	c.ChunkBytes = 2 << 10
	spec := faultSpec(t)
	cases := DefaultFaultCases(20240817)
	results, err := c.FaultSweep(spec, cases)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(cases) {
		t.Fatalf("sweep produced %d results for %d cases", len(results), len(cases))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("case %s: %v", r.Name, r.Err)
			continue
		}
		if !r.Identical {
			t.Errorf("case %s: consumer data differs from the fault-free baseline", r.Name)
		}
		// Degraded (crash) cases may recover everything over the file
		// transport and issue no in-situ data queries at all.
		if !cases[i].Degraded && r.Query.ChunksFetched <= r.Query.DataQueries {
			t.Errorf("case %s: %d chunks over %d data queries — streams were not multi-frame",
				r.Name, r.Query.ChunksFetched, r.Query.DataQueries)
		}
	}
}

func TestFaultTrialCrashUsesRecoveryPaths(t *testing.T) {
	// A producer crash mid-serve must actually exercise the degraded paths:
	// either queries failed over to another rank, or reads fell back to the
	// file on the PFS (usually both). Small chunks make every data response
	// a multi-frame stream, so the crash-mid-stream case really kills the
	// producer in the middle of one.
	c := QuickConfig()
	c.ChunkBytes = 2 << 10
	spec := faultSpec(t)
	var crash []FaultCase
	for _, fc := range DefaultFaultCases(99) {
		if fc.Degraded {
			crash = append(crash, fc)
		}
	}
	if len(crash) == 0 {
		t.Fatal("no degraded cases in the default sweep")
	}
	results, err := c.FaultSweep(spec, crash)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("case %s: %v", r.Name, r.Err)
			continue
		}
		if !r.Identical {
			t.Errorf("case %s: data not bit-identical after crash recovery", r.Name)
		}
		if r.Query.Failovers == 0 && r.Query.FileFallbacks == 0 {
			t.Errorf("case %s: no failovers or file fallbacks recorded — the crash did not bite", r.Name)
		}
	}
}

func TestFaultTrialBaselineCleanCountersZero(t *testing.T) {
	// Without a plan the exchange must not touch any recovery path.
	c := QuickConfig()
	spec := faultSpec(t)
	_, data, qs, err := c.faultExchange(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	for r, b := range data {
		if len(b) == 0 {
			t.Errorf("consumer %d received no data", r)
		}
	}
	if qs.Failovers != 0 || qs.FileFallbacks != 0 {
		t.Errorf("fault-free run recorded failovers=%d fallbacks=%d", qs.Failovers, qs.FileFallbacks)
	}
}

func TestFaultTrialDoneAckLastAckRace(t *testing.T) {
	// Regression: with seed 1 this exact plan corrupts the acknowledgment of
	// the consumer's done to producer rank 0 — after the producer has counted
	// the done and exited its serve loop, so no retry can ever be answered.
	// Close used to give up on the first failed done call, stranding the
	// remaining producers' serve sessions in a whole-world deadlock. It must
	// instead treat the terminal ack timeout as a counted done and still
	// notify every other producer rank.
	c := QuickConfig()
	spec, err := c.specFor(4, c.ScaleFactor)
	if err != nil {
		t.Fatal(err)
	}
	plan := mpi.FaultPlan{Seed: 1, Rules: []mpi.FaultRule{
		{Action: mpi.FaultCorrupt, Rank: mpi.AnyRank, Tag: rpc.TagResponse, After: 5, Count: 2},
	}}
	secs, data, _, err := c.faultExchange(spec, &plan)
	if err != nil {
		t.Fatal(err)
	}
	for r, d := range data {
		if len(d) == 0 {
			t.Errorf("consumer %d received no data", r)
		}
	}
	t.Logf("exchange under done-ack corruption completed in %.3fs", secs)
}
