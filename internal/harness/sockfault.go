package harness

import (
	"fmt"
	"os"
	"strings"
	"time"

	"lowfive/internal/rankmain"
	"lowfive/internal/transport"
	"lowfive/internal/workload"
	"lowfive/mpi"
)

// The sock fault sweep: each case runs a real multi-process world — one OS
// process per rank over TCP or Unix sockets — with a seeded WirePlan
// sabotaging the wire below the frame codec, and proves the transport's
// reconnect/resume/resend machinery keeps the data bit-identical to the
// in-proc chan-engine reference. Four cases exercise wire recovery under
// the full distributed-VOL exchange (the paper's workflow, so collectives
// and metadata queries ride the faulted wire too); the fifth stacks a
// SIGKILL+respawn on top of wire corruption, composing the process-restart
// protocol with connection-level recovery.

// SockFaultCase is one wire-fault scenario of the sweep.
type SockFaultCase struct {
	// Name labels the case; Network is "tcp" or "unix".
	Name, Network string
	// Spec is the full child-process workload, including the WirePlan and
	// recovery tuning that ride the spawn environment.
	Spec rankmain.Spec
	// KillRank, when >= 0, is SIGKILLed KillAfter into the run and
	// respawned with a bumped incarnation.
	KillRank  int
	KillAfter time.Duration
	// WantReconnects / WantResent assert that the recovery counters
	// summed over every rank process came out positive — proof the faults
	// actually landed and the transport recovered, rather than the plan
	// missing the traffic.
	WantReconnects, WantResent bool
}

// SockFaultResult reports one sweep case.
type SockFaultResult struct {
	// Case and Network identify the scenario.
	Case, Network string
	// Procs is the world size; Restarts counts respawned processes.
	Procs, Restarts int
	// Identical reports whether every consumer digest matched the in-proc
	// reference bit for bit.
	Identical bool
	// Reconnects, Redials and ResentFrames are the recovery counters
	// summed over every rank process's final stats line.
	Reconnects, Redials, ResentFrames int64
	// Seconds is the wall time of the multi-process run.
	Seconds float64
}

// volFaultSpec sizes the distributed-VOL workload the wire-fault cases
// run: small enough for CI under -race, chatty enough (three epochs of
// create/serve/read/validate) that mid-stream faults land on live
// sessions. FastRecovery tightens the transport's tear/redial/resend
// timings so recovery converges in milliseconds.
func volFaultSpec(wire *mpi.WirePlan) rankmain.Spec {
	return rankmain.Spec{
		Producers: 2, Consumers: 2, Epochs: 3,
		Workload: "vol", GridPoints: 512, Particles: 128,
		Seed: 7, PaceMs: 10, ToleranceMs: 30000,
		Wire: wire, FastRecovery: true,
	}
}

// DefaultSockFaultCases is the standard wire-fault matrix. Every rule is
// Count-bounded (or, for the partition, window-bounded), which is what
// makes a lossy plan deterministically survivable; After offsets place
// the faults past the session handshake so they land mid-stream.
func DefaultSockFaultCases() []SockFaultCase {
	return []SockFaultCase{
		{
			// A producer's connection hard-resets mid-frame, twice. The
			// sender sees the write error, redials, resumes and resends.
			Name: "conn-reset-midstream", Network: "tcp",
			Spec: volFaultSpec(&mpi.WirePlan{Seed: 11, Rules: []mpi.WireRule{
				{Action: mpi.WireReset, Src: 0, After: 8, Count: 2},
			}}),
			KillRank: -1, WantReconnects: true, WantResent: true,
		},
		{
			// Seeded byte flips on the wire. The receiver's CRC (or a
			// mangled sequence prefix) rejects the frame and parks at its
			// resume point; the sender's ack stall tears and resends.
			Name: "corrupt-on-wire", Network: "unix",
			Spec: volFaultSpec(&mpi.WirePlan{Seed: 12, Rules: []mpi.WireRule{
				{Action: mpi.WireCorrupt, Src: 1, After: 6, Count: 2},
			}}),
			KillRank: -1, WantReconnects: true, WantResent: true,
		},
		{
			// Every rank's outgoing wire paced to 256 KiB/s. Nothing to
			// recover — the assertion is that real backpressure (slept
			// writes under the send lock) perturbs no byte of the data.
			Name: "throttled-link", Network: "unix",
			Spec: volFaultSpec(&mpi.WirePlan{Seed: 13, Rules: []mpi.WireRule{
				{Action: mpi.WireThrottle, Src: mpi.WireAnyRank, After: 2, Bandwidth: 256 << 10},
			}}),
			KillRank: -1,
		},
		{
			// A 250ms partition window on a producer's outgoing links:
			// writes silently vanish, redial handshakes die inside the
			// window, and the link heals on its own. Only the ack-progress
			// timeout can detect it; resume/resend repairs it.
			Name: "partition-then-heal", Network: "tcp",
			Spec: volFaultSpec(&mpi.WirePlan{Seed: 14, Rules: []mpi.WireRule{
				{Action: mpi.WirePartition, Src: 0, After: 6, Count: 1, Duration: 250 * time.Millisecond},
			}}),
			KillRank: -1, WantReconnects: true, WantResent: true,
		},
		{
			// The composed case: SIGKILL a producer mid-stream (the digest
			// workload's respawn/dedup restart protocol) while a second
			// producer's wire corrupts a frame (connection-level recovery).
			// Both layers must hold at once.
			Name: "kill-under-wire-faults", Network: "unix",
			Spec: func() rankmain.Spec {
				s := defaultSockSpec()
				s.Wire = &mpi.WirePlan{Seed: 15, Rules: []mpi.WireRule{
					{Action: mpi.WireCorrupt, Src: 1, After: 5, Count: 1},
				}}
				s.FastRecovery = true
				return s
			}(),
			KillRank: 0, KillAfter: defaultSockCaseKillAfter,
			WantReconnects: true, WantResent: true,
		},
	}
}

// SockFaultSweep runs the wire-fault matrix: for each case it computes the
// in-proc reference digests, spawns the rank processes with the WirePlan
// riding their environment, optionally SIGKILLs and respawns one rank, and
// verifies (a) every consumer's data is bit-identical to the fault-free
// in-proc run and (b) the summed recovery counters prove the faults were
// hit and survived rather than missed.
func (c Config) SockFaultSweep(cases []SockFaultCase) ([]SockFaultResult, error) {
	if cases == nil {
		cases = DefaultSockFaultCases()
	}
	var out []SockFaultResult
	for _, fc := range cases {
		c.setStatus("sock.fault.case", fc.Name)
		c.logf("sock fault sweep: %s (world %d over %s)\n", fc.Name, fc.Spec.WorldSize(), fc.Network)
		res, err := runSockFaultCase(fc)
		if err != nil {
			return out, fmt.Errorf("case %s: %w", fc.Name, err)
		}
		c.logf("sock fault sweep: %s done in %.2fs (reconnects %d, redials %d, resent %d, identical %v)\n",
			fc.Name, res.Seconds, res.Reconnects, res.Redials, res.ResentFrames, res.Identical)
		out = append(out, res)
	}
	return out, nil
}

// faultRef computes the in-proc chan-engine reference digests for a case's
// workload. The chan engine never sees the WirePlan, so this is the
// fault-free truth the faulted sock run must reproduce.
func faultRef(spec rankmain.Spec) ([]uint64, error) {
	if spec.Workload == "vol" {
		return rankmain.RunChanVOL(spec)
	}
	return rankmain.RunChan(spec)
}

func runSockFaultCase(fc SockFaultCase) (SockFaultResult, error) {
	res := SockFaultResult{Case: fc.Name, Network: fc.Network, Procs: fc.Spec.WorldSize()}
	ref, err := faultRef(fc.Spec)
	if err != nil {
		return res, fmt.Errorf("chan reference: %w", err)
	}
	spec := fc.Spec
	coordAddr := "127.0.0.1:0"
	if fc.Network == "unix" {
		coordAddr = fmt.Sprintf("%s/lf-fault-%d.%d.sock", os.TempDir(), os.Getpid(), sockCaseSeq.Add(1))
		os.Remove(coordAddr)
	}
	coord, err := transport.NewCoordinator(fc.Network, coordAddr, spec.WorldSize())
	if err != nil {
		return res, err
	}
	defer coord.Close()

	t0 := time.Now()
	procs := make([]*rankProc, spec.WorldSize())
	for r := range procs {
		if procs[r], err = spawnRank(spec, fc.Network, coord.Addr(), r, 0); err != nil {
			killAll(procs)
			return res, fmt.Errorf("spawn rank %d: %w", r, err)
		}
	}
	defer killAll(procs)

	if fc.KillRank >= 0 {
		time.Sleep(fc.KillAfter)
		victim := procs[fc.KillRank]
		if err := victim.cmd.Process.Kill(); err != nil {
			return res, fmt.Errorf("kill rank %d: %w", fc.KillRank, err)
		}
		victim.cmd.Wait()
		if procs[fc.KillRank], err = spawnRank(spec, fc.Network, coord.Addr(), fc.KillRank, 1); err != nil {
			return res, fmt.Errorf("respawn rank %d: %w", fc.KillRank, err)
		}
		res.Restarts++
	}

	if err := waitProcs(procs, caseTimeout); err != nil {
		killAll(procs)
		return res, err
	}
	res.Seconds = time.Since(t0).Seconds()

	// Collect consumer digests and per-rank recovery counters from the
	// children's marker lines.
	digests := map[int]uint64{}
	for _, p := range procs {
		for _, line := range strings.Split(p.out.String(), "\n") {
			if rank, d, ok := rankmain.ParseDigest(line); ok {
				digests[rank] = d
			}
			if _, st, ok := rankmain.ParseSockStats(line); ok {
				res.Reconnects += st.Reconnects
				res.Redials += st.Redials
				res.ResentFrames += st.ResentFrames
			}
		}
	}
	res.Identical = true
	for ci := 0; ci < spec.Consumers; ci++ {
		d, ok := digests[spec.Producers+ci]
		if !ok {
			return res, fmt.Errorf("consumer rank %d printed no digest", spec.Producers+ci)
		}
		if d != ref[ci] {
			res.Identical = false
		}
	}
	if !res.Identical {
		return res, fmt.Errorf("consumer digests differ from the fault-free in-proc reference")
	}
	if fc.WantReconnects && res.Reconnects == 0 {
		return res, fmt.Errorf("expected reconnects > 0, got 0 (faults never landed?)")
	}
	if fc.WantResent && res.ResentFrames == 0 {
		return res, fmt.Errorf("expected resent frames > 0, got 0 (faults never landed?)")
	}
	return res, nil
}

// SockVOLWall runs one distributed-VOL exchange as a real multi-process
// sock world — one OS process per rank over Unix sockets — and returns
// its wall-clock seconds, spawn and world formation included: the bench
// JSON's sock-engine column next to the chan engine's modeled numbers.
// Consumer digests are checked bit-for-bit against the in-proc reference
// before the time is trusted.
func (c Config) SockVOLWall(ws workload.Spec, epochs int) (float64, error) {
	spec := rankmain.Spec{
		Producers: ws.Producers, Consumers: ws.Consumers, Epochs: epochs,
		Workload: "vol", GridPoints: ws.GridPointsPerProducer, Particles: ws.ParticlesPerProducer,
		Seed: 7, ToleranceMs: 30000,
	}
	res, err := runSockFaultCase(SockFaultCase{
		Name: "bench", Network: "unix", Spec: spec, KillRank: -1,
	})
	if err != nil {
		return 0, err
	}
	return res.Seconds, nil
}

// waitProcs waits for every current rank process, bounded by the timeout.
func waitProcs(procs []*rankProc, timeout time.Duration) error {
	done := make(chan error, 1)
	go func() {
		var firstErr error
		for r, p := range procs {
			if err := p.cmd.Wait(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("rank %d: %w (stderr above)", r, err)
			}
		}
		done <- firstErr
	}()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		return fmt.Errorf("case timed out after %s", timeout)
	}
}
