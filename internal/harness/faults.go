package harness

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"lowfive/h5"
	"lowfive/internal/core"
	"lowfive/internal/native"
	"lowfive/internal/pfs"
	"lowfive/internal/rpc"
	"lowfive/internal/workload"
	"lowfive/mpi"
)

// Fault trials run the standard producer–consumer exchange under seeded
// chaos plans and assert the consumers still end up with bit-identical data.
// The transport is the full fault-tolerant stack: RPC timeouts and retries
// absorb lost, duplicated and corrupted messages; index replication re-routes
// redirect queries around a crashed producer rank; and because the producers
// also write the file through to the simulated parallel file system
// (passthru), a crashed rank's data is recovered over the paper's file
// transport.

// FaultCase is one chaos plan of a sweep.
type FaultCase struct {
	// Name labels the case in reports.
	Name string
	// Plan is the seeded fault plan injected into the world.
	Plan mpi.FaultPlan
	// Degraded marks cases whose plan kills a rank: the trial then expects
	// the failover/fallback counters to be nonzero.
	Degraded bool
}

// FaultTrialResult is the outcome of one fault case.
type FaultTrialResult struct {
	// Name is the case label.
	Name string
	// Seconds is the exchange section wall time under injection.
	Seconds float64
	// Identical reports whether every consumer's data matched the
	// fault-free baseline bit for bit.
	Identical bool
	// Query is the summed consumer-side query counters; Failovers and
	// FileFallbacks show which recovery paths ran.
	Query core.QueryStats
	// Err is the first error any rank raised (expected rank-failure errors
	// from the injected crash itself are filtered out).
	Err error
}

// faultTolerance are the consumer-side RPC knobs used for every fault trial.
// The per-attempt timeout must comfortably exceed a cost-modeled response
// plus any injected delay; the retry budget must exceed every Count-bounded
// lossy rule in DefaultFaultCases.
const (
	faultCallTimeout = 400 * time.Millisecond
	faultCallRetries = 6
	faultCallBackoff = 2 * time.Millisecond
	faultReplication = 2
	faultWatchdog    = 30 * time.Second
)

// faultTuning carries the optional tail-latency knobs a sweep threads into
// the consumer VOLs. The zero value leaves both defenses off, which is what
// the message-loss sweep (FaultSweep) wants: its cases are about the retry
// ladder, not about racing replicas.
type faultTuning struct {
	// HedgeDelay enables hedged queries (with EWMA straggler demotion) on
	// the consumers when nonzero.
	HedgeDelay time.Duration
	// CallBudget is the end-to-end deadline for each consumer call chain.
	CallBudget time.Duration
}

// faultExchange runs one producer–consumer exchange with the given plan
// (nil for the fault-free baseline) and returns the exchange seconds, each
// consumer rank's received bytes (grid then particles), and the summed
// consumer query stats.
func (c Config) faultExchange(spec workload.Spec, plan *mpi.FaultPlan) (float64, [][]byte, core.QueryStats, error) {
	return c.faultExchangeTuned(spec, plan, faultTuning{})
}

// faultExchangeTuned is faultExchange with explicit consumer-side tail
// tuning; the partition sweep uses it to turn on hedging and deadlines.
func (c Config) faultExchangeTuned(spec workload.Spec, plan *mpi.FaultPlan, tune faultTuning) (float64, [][]byte, core.QueryStats, error) {
	fs := pfs.New(c.FS)
	if c.Metrics != nil {
		fs.SetMetrics(c.Metrics)
	}
	rec := &Recorder{}
	var errs errCollector
	data := make([][]byte, spec.Consumers)
	var qmu sync.Mutex
	var qstats core.QueryStats
	addStats := func(qs core.QueryStats) {
		qmu.Lock()
		qstats.MetadataFetches += qs.MetadataFetches
		qstats.BoxQueries += qs.BoxQueries
		qstats.DataQueries += qs.DataQueries
		qstats.BytesFetched += qs.BytesFetched
		qstats.WaitTime += qs.WaitTime
		qstats.Failovers += qs.Failovers
		qstats.FileFallbacks += qs.FileFallbacks
		qstats.ChunksFetched += qs.ChunksFetched
		qstats.Retries += qs.Retries
		qstats.HedgedCalls += qs.HedgedCalls
		qstats.HedgeWins += qs.HedgeWins
		qstats.StragglersDemoted += qs.StragglersDemoted
		qmu.Unlock()
	}
	opts := append(c.mpiOpts(), mpi.WithWatchdog(faultWatchdog))
	if plan != nil {
		opts = append(opts, mpi.WithFaultPlan(*plan))
	}
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "producer", Procs: spec.Producers, Main: func(p *mpi.Proc) {
			gridVals, partVals := workload.GenerateProducer(spec, p.Task.Rank())
			vol := core.NewDistMetadataVOL(p.Task, native.New(native.PFSBackend(fs)))
			vol.SetIntercomm("*", p.Intercomm("consumer"))
			// Passthru writes the file to the PFS as well: the recovery
			// target for data that dies with a crashed rank.
			vol.SetPassthru("*", true)
			vol.ReplicationFactor = faultReplication
			vol.ChunkBytes = c.ChunkBytes
			c.instrument(vol, false)
			fapl := h5.NewFileAccessProps(vol)
			p.World.Barrier()
			rec.Start()
			f, err := h5.CreateFile("faults.h5", fapl)
			if err != nil {
				errs.add(err)
				return
			}
			errs.add(workload.WriteSynthetic(f, spec, p.Task.Rank(), gridVals, partVals))
			if err := f.Close(); err != nil { // index + serve
				var rf *mpi.RankFailedError
				if errors.As(err, &rf) && rf.Rank == p.World.Rank() {
					return // this rank was crashed by the plan; expected
				}
				errs.add(err)
				return
			}
			p.World.Barrier()
			rec.Stop()
		}},
		{Name: "consumer", Procs: spec.Consumers, Main: func(p *mpi.Proc) {
			r := p.Task.Rank()
			vol := core.NewDistMetadataVOL(p.Task, native.New(native.PFSBackend(fs)))
			vol.SetIntercomm("*", p.Intercomm("producer"))
			vol.CallTimeout = faultCallTimeout
			vol.CallRetries = faultCallRetries
			vol.CallBackoff = faultCallBackoff
			vol.ReplicationFactor = faultReplication
			vol.HedgeDelay = tune.HedgeDelay
			vol.CallBudget = tune.CallBudget
			c.instrument(vol, true)
			fapl := h5.NewFileAccessProps(vol)
			p.World.Barrier()
			rec.Start()
			f, err := h5.OpenFile("faults.h5", fapl)
			if err != nil {
				errs.add(err)
				return
			}
			gridBuf, partBuf, err := workload.ReadConsumer(f, spec, r)
			errs.add(err)
			errs.add(f.Close())
			if err == nil {
				buf := make([]byte, 0, len(gridBuf)*8+len(partBuf)*4)
				buf = append(buf, h5.Bytes(gridBuf)...)
				buf = append(buf, h5.Bytes(partBuf)...)
				data[r] = buf
				errs.add(workload.ValidateConsumer(spec, r, gridBuf, partBuf))
			}
			addStats(vol.QueryStats())
			p.World.Barrier()
			rec.Stop()
		}},
	}, opts...)
	if err == nil {
		err = errs.first()
	}
	return rec.Seconds(), data, qstats, err
}

// DefaultFaultCases is the standard sweep: each lossy rule is Count-bounded
// below the consumers' retry budget, so every plan is deterministically
// survivable; the crash case removes one producer rank mid-serve, forcing
// replica failover for redirect queries and the file transport for the dead
// rank's data.
func DefaultFaultCases(seed int64) []FaultCase {
	return []FaultCase{
		{Name: "drop-requests", Plan: mpi.FaultPlan{Seed: seed, Rules: []mpi.FaultRule{
			{Action: mpi.FaultDrop, Rank: mpi.AnyRank, Tag: rpc.TagRequest, Count: 4},
		}}},
		{Name: "drop-responses", Plan: mpi.FaultPlan{Seed: seed, Rules: []mpi.FaultRule{
			{Action: mpi.FaultDrop, Rank: mpi.AnyRank, Tag: rpc.TagResponse, Count: 3},
		}}},
		{Name: "duplicate-requests", Plan: mpi.FaultPlan{Seed: seed, Rules: []mpi.FaultRule{
			{Action: mpi.FaultDuplicate, Rank: mpi.AnyRank, Tag: rpc.TagRequest, Count: 4},
		}}},
		{Name: "corrupt-responses", Plan: mpi.FaultPlan{Seed: seed, Rules: []mpi.FaultRule{
			{Action: mpi.FaultCorrupt, Rank: mpi.AnyRank, Tag: rpc.TagResponse, Count: 3},
		}}},
		{Name: "delay-responses", Plan: mpi.FaultPlan{Seed: seed, Rules: []mpi.FaultRule{
			{Action: mpi.FaultDelay, Rank: mpi.AnyRank, Tag: rpc.TagResponse, Count: 6,
				Delay: 20 * time.Millisecond},
		}}},
		{Name: "lossy-mix", Plan: mpi.FaultPlan{Seed: seed, Rules: []mpi.FaultRule{
			{Action: mpi.FaultDrop, Rank: mpi.AnyRank, Tag: rpc.TagRequest, Count: 2},
			{Action: mpi.FaultDuplicate, Rank: mpi.AnyRank, Tag: rpc.TagRequest, Count: 2},
			{Action: mpi.FaultCorrupt, Rank: mpi.AnyRank, Tag: rpc.TagResponse, Count: 2},
		}}},
		// The stream-chunk cases arm after several responses have passed,
		// so with a multi-frame stream (small Config.ChunkBytes) they hit a
		// data frame in the middle of a stream rather than the scalar
		// metadata/box responses that precede it. Recovery is the stream
		// retry contract: the consumer's per-frame timeout resends the
		// request and the producer re-streams from frame 0.
		{Name: "drop-stream-chunk", Plan: mpi.FaultPlan{Seed: seed, Rules: []mpi.FaultRule{
			{Action: mpi.FaultDrop, Rank: mpi.AnyRank, Tag: rpc.TagResponse, After: 4, Count: 2},
		}}},
		{Name: "corrupt-stream-chunk", Plan: mpi.FaultPlan{Seed: seed, Rules: []mpi.FaultRule{
			{Action: mpi.FaultCorrupt, Rank: mpi.AnyRank, Tag: rpc.TagResponse, After: 5, Count: 2},
		}}},
		{Name: "crash-producer-0", Degraded: true, Plan: mpi.FaultPlan{Seed: seed, Rules: []mpi.FaultRule{
			// World rank 0 is producer task rank 0 (tasks are laid out in
			// spec order). It dies at its third response send — after serving
			// something, so the consumers are already talking to it.
			{Action: mpi.FaultCrash, Rank: 0, Tag: rpc.TagResponse, After: 2},
		}}},
		{Name: "crash-mid-stream", Degraded: true, Plan: mpi.FaultPlan{Seed: seed, Rules: []mpi.FaultRule{
			// Like the stream-chunk cases, arming after several responses
			// puts the crash inside a multi-frame data stream (run the sweep
			// with small Config.ChunkBytes): the consumer is left holding a
			// partial stream whose remaining frames will never arrive, and
			// must abandon the cursor, fail over to a replica or fall back to
			// the file on the PFS, and still end up bit-identical.
			{Action: mpi.FaultCrash, Rank: 0, Tag: rpc.TagResponse, After: 4},
		}}},
		{Name: "crash-under-loss", Degraded: true, Plan: mpi.FaultPlan{Seed: seed, Rules: []mpi.FaultRule{
			{Action: mpi.FaultCrash, Rank: 0, Tag: rpc.TagResponse, After: 2},
			{Action: mpi.FaultDrop, Rank: mpi.AnyRank, Tag: rpc.TagRequest, Count: 2},
			{Action: mpi.FaultDuplicate, Rank: mpi.AnyRank, Tag: rpc.TagResponse, Count: 2},
		}}},
	}
}

// FaultSweep runs the fault-free baseline and then every case, comparing
// each case's consumer data bit for bit against the baseline.
func (c Config) FaultSweep(spec workload.Spec, cases []FaultCase) ([]FaultTrialResult, error) {
	_, baseline, _, err := c.faultExchange(spec, nil)
	if err != nil {
		return nil, fmt.Errorf("harness: fault-free baseline failed: %w", err)
	}
	for r, b := range baseline {
		if len(b) == 0 {
			return nil, fmt.Errorf("harness: baseline consumer %d received no data", r)
		}
	}
	out := make([]FaultTrialResult, 0, len(cases))
	for _, fc := range cases {
		c.setStatus("sweep", "faults: "+fc.Name)
		secs, data, qs, err := c.faultExchange(spec, &fc.Plan)
		res := FaultTrialResult{Name: fc.Name, Seconds: secs, Query: qs, Err: err}
		if err == nil {
			res.Identical = equalRankData(baseline, data)
		}
		c.logf("fault case %-20s identical=%v failovers=%d fallbacks=%d err=%v\n",
			fc.Name, res.Identical, qs.Failovers, qs.FileFallbacks, err)
		out = append(out, res)
	}
	return out, nil
}

// equalRankData compares per-rank byte blobs.
func equalRankData(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// PrintFaultTable renders a sweep as an aligned text table.
func PrintFaultTable(w io.Writer, results []FaultTrialResult) {
	fmt.Fprintf(w, "Fault injection sweep: consumer data vs fault-free baseline\n")
	fmt.Fprintf(w, "%-20s %10s %10s %10s %10s  %s\n",
		"case", "seconds", "identical", "failovers", "fallbacks", "error")
	for _, r := range results {
		errStr := ""
		if r.Err != nil {
			errStr = r.Err.Error()
		}
		fmt.Fprintf(w, "%-20s %9.4fs %10v %10d %10d  %s\n",
			r.Name, r.Seconds, r.Identical, r.Query.Failovers, r.Query.FileFallbacks, errStr)
	}
}
