package harness

import (
	"fmt"
	"io"
	"sync"
	"time"

	"lowfive"
	"lowfive/h5"
	"lowfive/internal/native"
	"lowfive/internal/pfs"
	"lowfive/internal/stage"
	"lowfive/metrics"
	"lowfive/mpi"
	"lowfive/workflow"
)

// Staging trials run the same epoch-structured coupling as the recovery
// trials, but through the log-structured staging store: producers publish
// each file close as a committed epoch of a replicated chunk log, consumers
// read epochs from the log, and a restarted producer recovers by replaying
// its shard's last committed span instead of Rejoin + Reindex. Faults are
// injected through the store's OnCommit hook (replica loss, a crash torn
// across the commit itself, watermark-driven truncation racing a restart),
// and every case must end with the consumers holding data bit-identical to
// a fault-free staging run — with the recovery accounting proving the
// replay path, not the re-serve path, did the work.

// StagingCase is one staged-log fault scenario of a sweep.
type StagingCase struct {
	// Name labels the case in reports.
	Name string
	// Replicas is the store's replication factor (leader + followers).
	Replicas int
	// AutoGC truncates acked epochs eagerly — the truncation case's trigger.
	AutoGC bool
	// WantRestarts is the number of task restarts the fault must force
	// (0 for replica-level faults the supervisor never sees).
	WantRestarts int
	// Fault builds the store's OnCommit hook for this case. It receives a
	// getter for the case's store (the hook must be constructed before the
	// store exists) and may fail replicas or panic a rank crash.
	Fault func(st func() *stage.Store) func(file string, rank int, epoch int64)
	// Check runs case-specific assertions over the result.
	Check func(r *StagingResult) error
}

// StagingResult is the outcome of one staging case.
type StagingResult struct {
	// Name is the case label.
	Name string
	// Seconds is the exchange wall time including any restart and replay.
	Seconds float64
	// Identical reports whether every consumer's per-epoch data matched the
	// fault-free staging baseline bit for bit.
	Identical bool
	// Stats is the supervised run's restart/replay accounting.
	Stats workflow.RunStats
	// Log is the staging store's own accounting after the run.
	Log stage.StoreStats
	// ReplayMs is the total wall time restarted ranks spent in log replay
	// (including PFS fallbacks), in milliseconds.
	ReplayMs float64
	// Err is the first error any rank raised, or a sweep-level assertion
	// failure.
	Err error
}

// stagingExchange runs one supervised epoch exchange through a staging
// store built from the case parameters (nil case = fault-free baseline) and
// returns the wall seconds, each consumer rank's received bytes, the run
// stats, and the store stats.
func (c Config) stagingExchange(sc *StagingCase) (float64, [][]byte, *workflow.RunStats, stage.StoreStats, error) {
	fs := pfs.New(c.FS)
	rec := &Recorder{}
	var errs errCollector
	data := make([][]byte, recoveryConsumers)
	var mu sync.Mutex

	// The store gets its own registry so the replay-latency histogram
	// covers exactly this run's recoveries.
	reg := metrics.NewRegistry()
	opt := stage.Options{Replicas: 1, Metrics: reg}
	if sc != nil {
		if sc.Replicas > 0 {
			opt.Replicas = sc.Replicas
		}
		opt.AutoGC = sc.AutoGC
	}
	var st *stage.Store
	if sc != nil && sc.Fault != nil {
		hook := sc.Fault(func() *stage.Store { return st })
		opt.OnCommit = func(file string, rank int, epoch int64) { hook(file, rank, epoch) }
	}
	st = stage.NewStore(opt)

	g := workflow.Graph{
		Tasks: []workflow.Task{
			{Name: "producer", Procs: recoveryProducers},
			{Name: "consumer", Procs: recoveryConsumers},
		},
		Edges: []workflow.Edge{{From: "producer", To: "consumer", Pattern: "epoch*.h5"}},
		Stage: st,
	}
	rows := recoveryDims[0] / recoveryProducers
	cols := recoveryDims[1] / recoveryConsumers
	g.BindEpoch("producer", func(p *mpi.Proc, vol *lowfive.DistMetadataVOL, fapl *h5.FileAccessProps, ctx *workflow.TaskCtx) {
		r := int64(p.Task.Rank())
		rec.Start()
		defer rec.Stop()
		for e := ctx.Epoch; e < recoveryEpochs; e++ {
			f, err := h5.CreateFile(fmt.Sprintf("epoch%d.h5", e), fapl)
			if err != nil {
				errs.add(err)
				return
			}
			ds, err := f.CreateDataset("grid", h5.U64, h5.NewSimple(recoveryDims...))
			if err != nil {
				errs.add(err)
				return
			}
			sel := h5.NewSimple(recoveryDims...)
			sel.SelectHyperslab(h5.SelectSet, []int64{r * rows, 0}, []int64{rows, recoveryDims[1]})
			vals := make([]uint64, rows*recoveryDims[1])
			for i := range vals {
				vals[i] = uint64(e)*1_000_000 + uint64(r*rows*recoveryDims[1]) + uint64(i)
			}
			if err := ds.Write(nil, sel, h5.Bytes(vals)); err != nil {
				errs.add(err)
				return
			}
			ds.Close()
			if err := f.Close(); err != nil { // checkpoint + publish epoch to the log
				errs.add(err)
				return
			}
			ctx.EpochDone(e)
		}
	})
	g.BindEpoch("consumer", func(p *mpi.Proc, vol *lowfive.DistMetadataVOL, fapl *h5.FileAccessProps, ctx *workflow.TaskCtx) {
		r := p.Task.Rank()
		mu.Lock()
		data[r] = nil // a restarted consumer attempt must not double-append
		mu.Unlock()
		rec.Start()
		defer rec.Stop()
		for e := ctx.Epoch; e < recoveryEpochs; e++ {
			f, err := h5.OpenFile(fmt.Sprintf("epoch%d.h5", e), fapl)
			if err != nil {
				errs.add(err)
				return
			}
			ds, err := f.OpenDataset("grid")
			if err != nil {
				errs.add(err)
				return
			}
			sel := h5.NewSimple(recoveryDims...)
			sel.SelectHyperslab(h5.SelectSet, []int64{0, int64(r) * cols}, []int64{recoveryDims[0], cols})
			out := make([]uint64, recoveryDims[0]*cols)
			if err := ds.Read(nil, sel, h5.Bytes(out)); err != nil {
				errs.add(err)
				return
			}
			ds.Close()
			if err := f.Close(); err != nil { // acks the epoch, advancing the watermark
				errs.add(err)
				return
			}
			mu.Lock()
			data[r] = append(data[r], h5.Bytes(out)...)
			mu.Unlock()
			ctx.EpochDone(e)
		}
	})

	pol := workflow.Policy{Mode: workflow.Restart, Backoff: time.Millisecond}
	opts := append(c.mpiOpts(), mpi.WithWatchdog(faultWatchdog))
	stats, err := workflow.RunSupervised(g,
		func() h5.Connector { return native.New(native.PFSBackend(fs)) }, pol, opts...)
	if err == nil {
		err = errs.first()
	}
	if err == nil && stats != nil && stats.ReplayedFiles > 0 &&
		reg.Histogram("stage.replay.latency_us").Snapshot().Count == 0 && stats.StageFallbacks != stats.ReplayedFiles {
		err = fmt.Errorf("harness: %d replays left no trace in the replay-latency histogram", stats.ReplayedFiles)
	}
	return rec.Seconds(), data, stats, st.Stats(), err
}

// DefaultStagingCases is the standard staged-log fault sweep: leader crash,
// follower crash, a rank crash torn across its own epoch commit, and GC
// truncation racing a restarted rank's replay.
func DefaultStagingCases() []StagingCase {
	return []StagingCase{
		// The shard leader dies in the instant between replicating an epoch
		// commit and making it visible. The surviving follower has every
		// acked record by the lockstep invariant, failover promotes it, and
		// consumers read the epoch from the new leader — no task restart, no
		// supervisor involvement.
		{Name: "leader-crash", Replicas: 2, WantRestarts: 0,
			Fault: func(st func() *stage.Store) func(string, int, int64) {
				var once sync.Once
				return func(file string, rank int, epoch int64) {
					if file == "epoch0.h5" {
						once.Do(func() { st().FailLeader(file, rank) })
					}
				}
			},
			Check: func(r *StagingResult) error {
				if r.Log.Failovers < 1 {
					return fmt.Errorf("leader crash caused no failover")
				}
				if r.Log.DeadReplicas < 1 {
					return fmt.Errorf("leader crash left no dead replica")
				}
				return nil
			}},
		// A follower dies; the leader keeps serving and later appends simply
		// stop replicating to the lost copy. Nothing fails over.
		{Name: "follower-crash", Replicas: 2, WantRestarts: 0,
			Fault: func(st func() *stage.Store) func(string, int, int64) {
				var once sync.Once
				return func(file string, rank int, epoch int64) {
					if file == "epoch0.h5" {
						once.Do(func() { st().FailFollower(file, rank) })
					}
				}
			},
			Check: func(r *StagingResult) error {
				if r.Log.DeadReplicas < 1 {
					return fmt.Errorf("follower crash left no dead replica")
				}
				if r.Log.Failovers != 0 {
					return fmt.Errorf("follower crash must not fail over the leader (got %d)", r.Log.Failovers)
				}
				return nil
			}},
		// Producer rank 0 crashes inside its own commit of the second epoch:
		// the commit record is in the log but the epoch was never made
		// visible. The supervisor restarts the task; the restarted rank
		// replays epoch0.h5's committed span (delta, not history), re-runs
		// the interrupted epoch, and its re-begin supersedes the torn span.
		{Name: "crash-during-commit", Replicas: 2, WantRestarts: 1,
			Fault: func(st func() *stage.Store) func(string, int, int64) {
				var once sync.Once
				return func(file string, rank int, epoch int64) {
					if file == "epoch1.h5" && rank == 0 {
						once.Do(func() { panic(&mpi.RankFailedError{Rank: rank}) })
					}
				}
			},
			Check: func(r *StagingResult) error {
				if r.Stats.ReplayedFiles < 1 {
					return fmt.Errorf("restart recovered without log replay")
				}
				if r.Log.SupersededEpochs < 1 {
					return fmt.Errorf("torn commit was not superseded by the re-begin")
				}
				if r.Stats.StageFallbacks != 0 {
					return fmt.Errorf("replay fell back to PFS with the log intact (%d fallbacks)", r.Stats.StageFallbacks)
				}
				// Replay cost must be the delta since the last commit, not
				// the whole history: each replayed shard scans one span
				// (begin + chunks + commit), a small fraction of everything
				// the run appended.
				if r.Log.Appends > 0 && int64(r.Stats.ReplayedRecords) >= r.Log.Appends/2 {
					return fmt.Errorf("replay scanned %d of %d appended records — not proportional to the delta",
						r.Stats.ReplayedRecords, r.Log.Appends)
				}
				return nil
			}},
		// GC truncation racing recovery: consumers ack each epoch at close
		// and AutoGC truncates below the watermark. The fault waits until
		// the first two files' epochs are truncated, then crashes rank 0 in
		// its last commit — so the restarted rank's replay finds its spans
		// gone and must degrade to the PFS container (Rejoin without the
		// collective reindex), never serving from a truncated log.
		{Name: "truncated-log", Replicas: 1, AutoGC: true, WantRestarts: 1,
			Fault: func(st func() *stage.Store) func(string, int, int64) {
				var once sync.Once
				return func(file string, rank int, epoch int64) {
					if file != "epoch2.h5" || rank != 0 {
						return
					}
					once.Do(func() {
						deadline := time.Now().Add(10 * time.Second)
						for time.Now().Before(deadline) {
							if st().Watermark("epoch0.h5") >= 1 && st().Watermark("epoch1.h5") >= 1 {
								break
							}
							time.Sleep(time.Millisecond)
						}
						panic(&mpi.RankFailedError{Rank: rank})
					})
				}
			},
			Check: func(r *StagingResult) error {
				if r.Log.TruncatedEpochs < 1 {
					return fmt.Errorf("GC truncated nothing — the case never exercised the fallback")
				}
				if r.Stats.StageFallbacks < 1 {
					return fmt.Errorf("truncated replay did not fall back to the PFS container")
				}
				return nil
			}},
	}
}

// StagingSweep runs the fault-free staging baseline and then every case,
// comparing each case's consumer data bit for bit against the baseline and
// asserting the shared recovery invariants: expected restarts happened, and
// recovery went through log replay — the Rejoin + Reindex re-serve path is
// never taken in staging mode.
func (c Config) StagingSweep(cases []StagingCase) ([]StagingResult, error) {
	_, baseline, _, _, err := c.stagingExchange(nil)
	if err != nil {
		return nil, fmt.Errorf("harness: staging baseline failed: %w", err)
	}
	for r, b := range baseline {
		if len(b) == 0 {
			return nil, fmt.Errorf("harness: staging baseline consumer %d received no data", r)
		}
	}
	out := make([]StagingResult, 0, len(cases))
	for i := range cases {
		sc := &cases[i]
		secs, data, stats, ls, err := c.stagingExchange(sc)
		res := StagingResult{Name: sc.Name, Seconds: secs, Log: ls, Err: err}
		if stats != nil {
			res.Stats = *stats
			res.ReplayMs = float64(stats.ReplayTime.Nanoseconds()) / 1e6
		}
		if res.Err == nil {
			res.Identical = equalRankData(baseline, data)
			switch {
			case res.Stats.RestartCount != sc.WantRestarts:
				res.Err = fmt.Errorf("harness: %d restarts, want %d (the fault did not bite)",
					res.Stats.RestartCount, sc.WantRestarts)
			case res.Stats.Reindexed != 0:
				res.Err = fmt.Errorf("harness: recovery took the Rejoin re-serve path (%d reindexed files) in staging mode",
					res.Stats.Reindexed)
			case sc.Check != nil:
				res.Err = sc.Check(&res)
			}
		}
		c.logf("staging case %-20s identical=%v restarts=%d replayed=%d/%dB fallbacks=%d failovers=%d truncated=%d err=%v\n",
			sc.Name, res.Identical, res.Stats.RestartCount, res.Stats.ReplayedFiles,
			res.Stats.ReplayedBytes, res.Stats.StageFallbacks, res.Log.Failovers,
			res.Log.TruncatedEpochs, res.Err)
		out = append(out, res)
	}
	return out, nil
}

// PrintStagingTable renders a staging sweep as an aligned text table.
func PrintStagingTable(w io.Writer, results []StagingResult) {
	fmt.Fprintf(w, "Staged-log fault sweep: replay recovery vs fault-free staging baseline\n")
	fmt.Fprintf(w, "%-20s %10s %10s %9s %8s %10s %10s %10s  %s\n",
		"case", "seconds", "identical", "restarts", "replays", "fallbacks", "failovers", "truncated", "error")
	for _, r := range results {
		errStr := ""
		if r.Err != nil {
			errStr = r.Err.Error()
		}
		fmt.Fprintf(w, "%-20s %9.4fs %10v %9d %8d %10d %10d %10d  %s\n",
			r.Name, r.Seconds, r.Identical, r.Stats.RestartCount, r.Stats.ReplayedFiles,
			r.Stats.StageFallbacks, r.Log.Failovers, r.Log.TruncatedEpochs, errStr)
	}
}
