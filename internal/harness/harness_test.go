package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"lowfive/internal/nyx"
	"lowfive/internal/workload"
)

func testConfig() Config {
	c := QuickConfig()
	c.Scales = []int{4}
	c.NetAlpha = 0
	c.NetBeta = 0
	return c
}

func testSpec() workload.Spec {
	return workload.Spec{Producers: 3, Consumers: 1, GridPointsPerProducer: 512, ParticlesPerProducer: 500}
}

func TestRecorder(t *testing.T) {
	r := &Recorder{}
	if r.Seconds() != 0 {
		t.Error("empty recorder should read 0")
	}
	r.Start()
	time.Sleep(5 * time.Millisecond)
	r.Stop()
	if s := r.Seconds(); s < 0.004 || s > 1 {
		t.Errorf("seconds=%v", s)
	}
	// Start keeps the earliest, Stop the latest.
	first := r.Seconds()
	r.Start() // later start must not shrink the interval
	if r.Seconds() < first {
		t.Error("later Start must not move t0 forward")
	}
}

func TestTrialLowFiveMemory(t *testing.T) {
	c := testConfig()
	sec, err := c.trialLowFiveMemory(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if sec <= 0 {
		t.Errorf("seconds=%v", sec)
	}
}

func TestTrialLowFiveFileAndPureHDF5(t *testing.T) {
	c := testConfig()
	if _, err := c.trialLowFiveFile(testSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.trialPureHDF5(testSpec()); err != nil {
		t.Fatal(err)
	}
}

func TestTrialPureMPI(t *testing.T) {
	c := testConfig()
	if _, err := c.trialPureMPI(testSpec()); err != nil {
		t.Fatal(err)
	}
}

func TestTrialDataSpaces(t *testing.T) {
	c := testConfig()
	if _, err := c.trialDataSpaces(testSpec()); err != nil {
		t.Fatal(err)
	}
}

func TestTrialBredala(t *testing.T) {
	c := testConfig()
	g, p, err := c.trialBredala(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if g <= 0 || p <= 0 {
		t.Errorf("grid=%v particles=%v", g, p)
	}
}

func TestFigurePrint(t *testing.T) {
	fig := Figure{
		ID:    "Figure X",
		Title: "test",
		Series: []Series{
			{Name: "a", Points: []Point{{4, 1.5}, {16, 2.5}}},
			{Name: "b", Points: []Point{{4, 0.5}}},
		},
	}
	var buf bytes.Buffer
	fig.Print(&buf)
	out := buf.String()
	for _, want := range []string{"Figure X", "a", "b", "4", "16", "1.5000s", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPrintTableI(t *testing.T) {
	var buf bytes.Buffer
	DefaultConfig().PrintTableI(&buf)
	out := buf.String()
	// 228.88 GiB is the exact total at 16384 procs; the paper's 223.51
	// comes from rounding the point counts to 1.2e10 first.
	for _, want := range []string{"16384", "12288", "4096", "228.88"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestSpecForValidation(t *testing.T) {
	c := testConfig()
	if _, err := c.specFor(2, 10); err == nil {
		t.Error("fewer than 4 procs should fail")
	}
	spec, err := c.specFor(16, 100)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Producers != 12 || spec.Consumers != 4 {
		t.Errorf("split %d/%d", spec.Producers, spec.Consumers)
	}
}

func TestFig7EndToEnd(t *testing.T) {
	// One full (tiny) figure: both series produced for every scale.
	c := testConfig()
	c.Scales = []int{4, 8}
	c.ScaleFactor = 2000
	fig, err := c.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series=%d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 2 {
			t.Errorf("series %q has %d points", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Seconds <= 0 {
				t.Errorf("series %q at %d procs: %v", s.Name, p.Procs, p.Seconds)
			}
		}
	}
}

func TestTableIISmoke(t *testing.T) {
	c := testConfig()
	u := UseCaseConfig{
		GridSides:     []int64{16},
		NyxProcs:      4,
		ReeberProcs:   2,
		Steps:         2,
		Threshold:     10,
		PlotfileGroup: 2,
	}
	rows, err := c.TableII(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows=%d", len(rows))
	}
	r := rows[0]
	if r.Halos != nyx.DefaultParams(16).NumHalos {
		t.Errorf("halos=%d", r.Halos)
	}
	if r.LFWrite <= 0 || r.H5Write <= 0 || r.PlotWrite <= 0 {
		t.Errorf("timings %+v", r)
	}
	var buf bytes.Buffer
	PrintTableII(&buf, rows)
	if !strings.Contains(buf.String(), "16^3") {
		t.Errorf("table output:\n%s", buf.String())
	}
}

func TestFigureWriteCSV(t *testing.T) {
	fig := Figure{
		ID: "F", Title: "t",
		Series: []Series{
			{Name: "a", Points: []Point{{4, 1.5}, {16, 2.0}}},
			{Name: "b", Points: []Point{{16, 0.25}}},
		},
	}
	var buf bytes.Buffer
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "procs,a,b\n4,1.500000,\n16,2.000000,0.250000\n"
	if got != want {
		t.Errorf("csv:\n%q\nwant\n%q", got, want)
	}
}

func TestAllFiguresSmoke(t *testing.T) {
	// One tiny end-to-end pass through every figure generator.
	c := testConfig()
	c.Scales = []int{4}
	c.LargeScales = []int{4}
	c.ScaleFactor = 2000
	c.LargeFactor = 2000
	figs := []struct {
		name string
		run  func() (Figure, error)
	}{
		{"fig5", c.Fig5},
		{"fig6", c.Fig6},
		{"fig8", c.Fig8},
		{"fig9", c.Fig9},
		{"fig11", c.Fig11},
	}
	for _, f := range figs {
		fig, err := f.run()
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		if len(fig.Series) < 2 {
			t.Errorf("%s: %d series", f.name, len(fig.Series))
		}
		for _, s := range fig.Series {
			if len(s.Points) != 1 || s.Points[0].Seconds <= 0 {
				t.Errorf("%s series %q: points %v", f.name, s.Name, s.Points)
			}
		}
	}
}

func TestFigOverlapShowsBenefit(t *testing.T) {
	c := testConfig()
	spec := workload.Spec{Producers: 3, Consumers: 1, GridPointsPerProducer: 500, ParticlesPerProducer: 500}
	const steps = 3
	compute := 40 * time.Millisecond
	sync, err := c.trialOverlap(spec, steps, compute, false)
	if err != nil {
		t.Fatal(err)
	}
	async, err := c.trialOverlap(spec, steps, compute, true)
	if err != nil {
		t.Fatal(err)
	}
	// Both include steps*compute of work; the async variant must not be
	// meaningfully slower (it overlaps serving with that work).
	if async > sync+float64(compute)/1e9*float64(steps)/2 {
		t.Errorf("async %v should not exceed sync %v by half the compute budget", async, sync)
	}
	if sync < (float64(compute) / 1e9 * steps) {
		t.Errorf("sync %v should include the compute time", sync)
	}
}

func TestWriteTableIICSV(t *testing.T) {
	rows := []TableIIRow{{Side: 32, LFWrite: 0.1, LFRead: 0.1, H5Write: 0.4, H5Read: 0.2, PlotWrite: 0.3, Halos: 24}}
	var buf bytes.Buffer
	if err := WriteTableIICSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"grid_side", "32,0.100000", "3.000", "1.500", ",24\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("csv missing %q:\n%s", want, out)
		}
	}
}
