package harness

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"lowfive/internal/rankmain"
	"lowfive/internal/transport"
)

// Transport names for Config.Transport and the bench JSON transport field.
const (
	// TransportChan is the in-proc engine: ranks as goroutines of this
	// process (the default, and the only engine the simulation trials use).
	TransportChan = "chan"
	// TransportSock is the real-socket engine: ranks as separate OS
	// processes exchanging CRC-framed messages.
	TransportSock = "sock"
)

// SockCase is one socket-mode smoke scenario.
type SockCase struct {
	// Name labels the case in results.
	Name string
	// Network is "tcp" or "unix".
	Network string
	// KillRank, when >= 0, is the world rank whose process is SIGKILLed
	// KillAfter into the run and then respawned with a bumped incarnation.
	KillRank int
	// KillAfter is how long after spawn the kill lands.
	KillAfter time.Duration
}

// SockResult reports one socket-mode smoke case.
type SockResult struct {
	// Case and Network identify the scenario.
	Case, Network string
	// Procs is the number of rank processes spawned (restarts not counted).
	Procs int
	// Restarts counts respawned rank processes.
	Restarts int
	// Identical reports whether every consumer digest matched the in-proc
	// chan-engine reference bit for bit.
	Identical bool
	// Seconds is the wall time of the multi-process run.
	Seconds float64
}

// defaultSockSpec sizes the smoke workload: small enough for CI under
// -race, long enough (paced epochs) that a mid-run kill lands mid-stream.
func defaultSockSpec() rankmain.Spec {
	return rankmain.Spec{
		Producers: 2, Consumers: 2, Epochs: 6, SliceBytes: 8 << 10,
		Seed: 7, PaceMs: 40, ToleranceMs: 30000,
	}
}

// defaultSockCaseKillAfter places the SIGKILL inside the paced send phase
// (6 epochs x 40 ms): late enough that connections exist, early enough
// that epochs remain unsent.
const defaultSockCaseKillAfter = 120 * time.Millisecond

// DefaultSockCases is the standard socket-mode smoke matrix: a clean run
// on each network flavor plus a kill-and-respawn run.
func DefaultSockCases() []SockCase {
	return []SockCase{
		{Name: "clean/unix", Network: "unix", KillRank: -1},
		{Name: "clean/tcp", Network: "tcp", KillRank: -1},
		{Name: "kill-producer/unix", Network: "unix", KillRank: 0, KillAfter: defaultSockCaseKillAfter},
	}
}

// SockSmoke runs the socket-transport smoke sweep: for each case it
// computes the in-proc reference digests, spawns one OS process per world
// rank (re-executing the current binary through rankmain.ChildFromEnv),
// optionally SIGKILLs one rank mid-run and respawns it with a bumped
// incarnation — the process-world analogue of the in-proc supervisor's
// RestartTask path — and verifies every consumer produced bit-identical
// data to the in-proc run.
func (c Config) SockSmoke(cases []SockCase) ([]SockResult, error) {
	if cases == nil {
		cases = DefaultSockCases()
	}
	spec := defaultSockSpec()
	ref, err := rankmain.RunChan(spec)
	if err != nil {
		return nil, fmt.Errorf("chan reference: %w", err)
	}
	var out []SockResult
	for _, sc := range cases {
		c.setStatus("sock.case", sc.Name)
		c.logf("sock smoke: %s (world %d over %s)\n", sc.Name, spec.WorldSize(), sc.Network)
		res, err := runSockCase(spec, sc, ref)
		if err != nil {
			return out, fmt.Errorf("case %s: %w", sc.Name, err)
		}
		c.logf("sock smoke: %s done in %.2fs (restarts %d, identical %v)\n",
			sc.Name, res.Seconds, res.Restarts, res.Identical)
		out = append(out, res)
	}
	return out, nil
}

// rankProc is one spawned rank process and its captured stdout.
type rankProc struct {
	cmd *exec.Cmd
	out *bytes.Buffer
}

// spawnRank re-executes this binary as one rank child.
func spawnRank(spec rankmain.Spec, network, coord string, rank int, inc uint32) (*rankProc, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	p := &rankProc{out: &bytes.Buffer{}}
	p.cmd = exec.Command(exe)
	p.cmd.Env = append(os.Environ(), rankmain.ChildEnv(spec, network, coord, rank, inc)...)
	p.cmd.Stdout = p.out
	p.cmd.Stderr = os.Stderr
	if err := p.cmd.Start(); err != nil {
		return nil, err
	}
	return p, nil
}

// caseTimeout bounds one whole smoke case, including respawn recovery.
const caseTimeout = 90 * time.Second

// sockCaseSeq makes the unix coordinator socket path unique per case.
var sockCaseSeq atomic.Int64

func runSockCase(spec rankmain.Spec, sc SockCase, ref []uint64) (SockResult, error) {
	res := SockResult{Case: sc.Name, Network: sc.Network, Procs: spec.WorldSize()}
	coordAddr := "127.0.0.1:0"
	if sc.Network == "unix" {
		coordAddr = fmt.Sprintf("%s/lf-coord-%d.%d.sock", os.TempDir(), os.Getpid(), sockCaseSeq.Add(1))
		os.Remove(coordAddr)
	}
	coord, err := transport.NewCoordinator(sc.Network, coordAddr, spec.WorldSize())
	if err != nil {
		return res, err
	}
	defer coord.Close()

	t0 := time.Now()
	procs := make([]*rankProc, spec.WorldSize())
	for r := range procs {
		if procs[r], err = spawnRank(spec, sc.Network, coord.Addr(), r, 0); err != nil {
			killAll(procs)
			return res, fmt.Errorf("spawn rank %d: %w", r, err)
		}
	}
	defer killAll(procs)

	// The kill-and-respawn path: SIGKILL the victim mid-stream, wait for
	// the process to die, relaunch it as incarnation 1. The coordinator
	// broadcasts the death (peers fail receives typed) and then the
	// rejoin (peers revive the rank); the respawned producer re-publishes
	// everything and consumers deduplicate.
	if sc.KillRank >= 0 {
		time.Sleep(sc.KillAfter)
		victim := procs[sc.KillRank]
		if err := victim.cmd.Process.Kill(); err != nil {
			return res, fmt.Errorf("kill rank %d: %w", sc.KillRank, err)
		}
		victim.cmd.Wait() // reap; exit error is the point
		if procs[sc.KillRank], err = spawnRank(spec, sc.Network, coord.Addr(), sc.KillRank, 1); err != nil {
			return res, fmt.Errorf("respawn rank %d: %w", sc.KillRank, err)
		}
		res.Restarts++
	}

	// Wait for every (current) rank process, bounded by the case timeout.
	done := make(chan error, 1)
	go func() {
		errs := make([]error, len(procs))
		var wg sync.WaitGroup
		for r := range procs {
			wg.Add(1)
			go func(p *rankProc, r int) {
				defer wg.Done()
				if err := p.cmd.Wait(); err != nil {
					errs[r] = fmt.Errorf("rank %d: %w (stderr above)", r, err)
				}
			}(procs[r], r)
		}
		wg.Wait()
		var firstErr error
		for _, e := range errs {
			if e != nil {
				firstErr = e
				break
			}
		}
		done <- firstErr
	}()
	select {
	case err = <-done:
		if err != nil {
			return res, err
		}
	case <-time.After(caseTimeout):
		killAll(procs)
		return res, fmt.Errorf("case timed out after %s", caseTimeout)
	}
	res.Seconds = time.Since(t0).Seconds()

	// Collect consumer digests and compare to the in-proc reference.
	digests := map[int]uint64{}
	for _, p := range procs {
		for _, line := range strings.Split(p.out.String(), "\n") {
			if rank, d, ok := rankmain.ParseDigest(line); ok {
				digests[rank] = d
			}
		}
	}
	res.Identical = true
	for ci := 0; ci < spec.Consumers; ci++ {
		d, ok := digests[spec.Producers+ci]
		if !ok {
			return res, fmt.Errorf("consumer rank %d printed no digest", spec.Producers+ci)
		}
		if d != ref[ci] {
			res.Identical = false
		}
	}
	if !res.Identical {
		return res, fmt.Errorf("consumer digests differ from the in-proc reference")
	}
	return res, nil
}

func killAll(procs []*rankProc) {
	for _, p := range procs {
		if p != nil && p.cmd.Process != nil {
			p.cmd.Process.Signal(syscall.SIGKILL)
		}
	}
}
