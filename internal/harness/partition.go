package harness

import (
	"fmt"
	"io"
	"time"

	"lowfive/internal/core"
	"lowfive/internal/rpc"
	"lowfive/internal/workload"
	"lowfive/mpi"
)

// Partition trials exercise the tail-latency defenses: link-level faults
// (a straggling rank, an asymmetric network partition, a healed partition,
// a throttled link) against consumers running with hedged queries, EWMA
// straggler demotion and end-to-end call budgets. Every case must still
// deliver bit-identical data, and each asserts the defense that should have
// carried it — hedge wins, demotions, or a clean no-fallback run — so a
// silently disabled defense fails the sweep instead of hiding behind the
// retry ladder.

// PartitionCase is one link-fault plan of a partition sweep, together with
// the defenses it is expected to exercise.
type PartitionCase struct {
	// Name labels the case in reports.
	Name string
	// Plan is the seeded link-fault plan injected into the world.
	Plan mpi.FaultPlan
	// WantHedgeWins asserts at least one hedged query was answered by the
	// replica rather than the primary.
	WantHedgeWins bool
	// WantDemotions asserts the EWMA tracker proactively demoted at least
	// one straggling rank from its primary slot.
	WantDemotions bool
	// WantNoFallbacks asserts the case was absorbed entirely in-memory:
	// no read degraded to the file transport.
	WantNoFallbacks bool
	// MaxSeconds, when positive, bounds the exchange wall time — the proof
	// that hedging beat the flat timeout-ladder path, which would run far
	// longer under the same plan.
	MaxSeconds float64
}

// PartitionTrialResult is the outcome of one partition case.
type PartitionTrialResult struct {
	// Name is the case label.
	Name string
	// Seconds is the exchange section wall time under injection.
	Seconds float64
	// Identical reports whether every consumer's data matched the
	// fault-free baseline bit for bit.
	Identical bool
	// Query is the summed consumer-side query counters; HedgeWins,
	// StragglersDemoted and FileFallbacks show which defense carried the
	// case.
	Query core.QueryStats
	// Err is the first error any rank raised, or a sweep-level assertion
	// failure (wrong data, a defense that should have fired but did not,
	// or a blown time bound).
	Err error
}

// Partition-sweep consumer tuning, layered on the faultTolerance knobs: the
// hedge delay must comfortably exceed a cost-modeled healthy response
// (NetAlpha is 2ms in the quick configs) while staying far below the
// per-attempt timeout; the end-to-end budget caps every call chain —
// including streams to a partitioned rank — well below the flat
// timeout×(retries+1) ladder, so a dead link costs one budget, not seven
// timeouts.
const (
	partitionHedgeDelay = 25 * time.Millisecond
	partitionCallBudget = 700 * time.Millisecond
)

// DefaultPartitionCases is the standard link-fault sweep. Every rule is
// scoped to producer world rank 0 — the single consumer's metadata partner
// (LocalRank mod producers), so the very first query of the exchange meets
// the fault — and to the RPC response tag, so producer-side collectives
// (barriers, the index alltoall) are untouched: these are link faults on
// the serve path, not rank crashes.
func DefaultPartitionCases(seed int64) []PartitionCase {
	return []PartitionCase{
		// One straggling response: the metadata answer is delayed far past
		// the hedge delay, so the consumer's hedge to a replica must win
		// while the straggler's answer is still in flight. Nothing is lost,
		// so no read may touch the file transport.
		{Name: "slow-producer", WantHedgeWins: true, WantNoFallbacks: true, MaxSeconds: 10,
			Plan: mpi.FaultPlan{Seed: seed, Rules: []mpi.FaultRule{
				{Action: mpi.FaultDelay, Rank: 0, Tag: rpc.TagResponse, Count: 1,
					Delay: 150 * time.Millisecond},
			}}},
		// An asymmetric partition that never heals within the run: rank 0
		// hears every request but all of its responses are silently dropped.
		// The metadata hedge wins, the EWMA demotes rank 0 before its box
		// queries are even tried, and the call budget caps the dead data
		// streams, so the whole exchange finishes well under the flat
		// timeout-ladder path (~timeout×(retries+1) per dead call chain).
		// Rank 0's own data is unreachable in memory and is recovered over
		// the passthru file — the paper's file transport as recovery path.
		{Name: "asymmetric-partition", WantHedgeWins: true, WantDemotions: true, MaxSeconds: 9,
			Plan: mpi.FaultPlan{Seed: seed, Rules: []mpi.FaultRule{
				{Action: mpi.FaultPartition, Rank: 0, Tag: rpc.TagResponse,
					Duration: 30 * time.Second},
			}}},
		// A partition that heals mid-exchange: shorter than one per-attempt
		// timeout, so the first retry of a stream caught inside the window
		// lands after the heal and completes in-memory — hedges cover the
		// scalar queries, the retry covers the stream, and no read ever
		// falls back to the file.
		{Name: "healed-partition", WantHedgeWins: true, WantNoFallbacks: true, MaxSeconds: 10,
			Plan: mpi.FaultPlan{Seed: seed, Rules: []mpi.FaultRule{
				{Action: mpi.FaultPartition, Rank: 0, Tag: rpc.TagResponse,
					Duration: 250 * time.Millisecond},
			}}},
		// A throttled link: rank 0's responses are serialized through a
		// 200 KB/s choke point, big frames proportionally slower, FIFO
		// order preserved. Everything arrives — late but intact and in
		// order — so the exchange completes entirely in-memory with no
		// retries forced by reordering.
		{Name: "throttled-link", WantNoFallbacks: true, MaxSeconds: 10,
			Plan: mpi.FaultPlan{Seed: seed, Rules: []mpi.FaultRule{
				{Action: mpi.FaultThrottle, Rank: 0, Tag: rpc.TagResponse,
					Bandwidth: 200e3},
			}}},
	}
}

// PartitionSweep runs the fault-free baseline and then every case under the
// partition tuning (hedged queries, straggler demotion, call budgets),
// comparing each case's consumer data bit for bit against the baseline and
// folding the case's defense assertions into its result.
func (c Config) PartitionSweep(spec workload.Spec, cases []PartitionCase) ([]PartitionTrialResult, error) {
	tune := faultTuning{HedgeDelay: partitionHedgeDelay, CallBudget: partitionCallBudget}
	_, baseline, bqs, err := c.faultExchangeTuned(spec, nil, tune)
	if err != nil {
		return nil, fmt.Errorf("harness: partition baseline failed: %w", err)
	}
	for r, b := range baseline {
		if len(b) == 0 {
			return nil, fmt.Errorf("harness: partition baseline consumer %d received no data", r)
		}
	}
	// Demotions are deliberately not checked here: on a loaded host the
	// exchange's cold start can make a rank genuinely slow for its first
	// couple of queries, and demoting it is the EWMA doing its job (it
	// earns the slot back through hedge probes). A fallback, though, means
	// the in-memory transport failed outright — never acceptable fault-free.
	if bqs.FileFallbacks != 0 {
		return nil, fmt.Errorf("harness: fault-free baseline degraded: %d file fallbacks", bqs.FileFallbacks)
	}
	out := make([]PartitionTrialResult, 0, len(cases))
	for _, pc := range cases {
		c.setStatus("sweep", "partition: "+pc.Name)
		secs, data, qs, err := c.faultExchangeTuned(spec, &pc.Plan, tune)
		res := PartitionTrialResult{Name: pc.Name, Seconds: secs, Query: qs, Err: err}
		if res.Err == nil {
			res.Identical = equalRankData(baseline, data)
			switch {
			case !res.Identical:
				res.Err = fmt.Errorf("harness: consumer data differs from the fault-free baseline (seed %d)", pc.Plan.Seed)
			case pc.WantHedgeWins && qs.HedgeWins == 0:
				res.Err = fmt.Errorf("harness: no hedge wins — the replica race never fired (seed %d)", pc.Plan.Seed)
			case pc.WantDemotions && qs.StragglersDemoted == 0:
				res.Err = fmt.Errorf("harness: no straggler demotions — queries kept waiting on the partitioned rank (seed %d)", pc.Plan.Seed)
			case pc.WantNoFallbacks && qs.FileFallbacks != 0:
				res.Err = fmt.Errorf("harness: %d file fallbacks — the case should have been absorbed in-memory (seed %d)",
					qs.FileFallbacks, pc.Plan.Seed)
			case pc.MaxSeconds > 0 && secs > pc.MaxSeconds:
				res.Err = fmt.Errorf("harness: exchange ran %.2fs, bound %.2fs — hedging did not beat the timeout ladder (seed %d)",
					secs, pc.MaxSeconds, pc.Plan.Seed)
			}
		}
		c.logf("partition case %-22s identical=%v hedged=%d wins=%d demoted=%d fallbacks=%d %.2fs err=%v\n",
			pc.Name, res.Identical, qs.HedgedCalls, qs.HedgeWins, qs.StragglersDemoted,
			qs.FileFallbacks, secs, res.Err)
		out = append(out, res)
	}
	return out, nil
}

// PrintPartitionTable renders a partition sweep as an aligned text table.
func PrintPartitionTable(w io.Writer, results []PartitionTrialResult) {
	fmt.Fprintf(w, "Partition & straggler sweep: hedged queries vs link faults\n")
	fmt.Fprintf(w, "%-22s %9s %9s %7s %6s %8s %9s  %s\n",
		"case", "seconds", "identical", "hedged", "wins", "demoted", "fallbacks", "error")
	for _, r := range results {
		errStr := ""
		if r.Err != nil {
			errStr = r.Err.Error()
		}
		fmt.Fprintf(w, "%-22s %8.4fs %9v %7d %6d %8d %9d  %s\n",
			r.Name, r.Seconds, r.Identical, r.Query.HedgedCalls, r.Query.HedgeWins,
			r.Query.StragglersDemoted, r.Query.FileFallbacks, errStr)
	}
}
