package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"lowfive/internal/core"
	"lowfive/internal/pfs"
	"lowfive/metrics"
)

// RunArtifact is the machine-readable record of one completed run: the
// aggregated serve/query counters, the per-OST file-system load, the full
// metrics snapshot, and any slow queries the flight recorder retained.
// lowfive-bench -profile -stats-out writes one; lowfive-inspect -run
// pretty-prints it, so a run can be interrogated after the process is gone.
type RunArtifact struct {
	Date    string              `json:"date"`
	Serve   core.ServeStats     `json:"serve"`
	Query   core.QueryStats     `json:"query"`
	OSTs    []pfs.OSTStat       `json:"osts,omitempty"`
	Metrics []metrics.Snapshot  `json:"metrics,omitempty"`
	Slow    []metrics.SlowQuery `json:"slow_queries,omitempty"`
}

// NewRunArtifact assembles the artifact for one profiled run from the
// harness's observability plane (registry and flight recorder, when set).
func (c Config) NewRunArtifact(stats ProfileStats) RunArtifact {
	a := RunArtifact{
		Date:  time.Now().Format(time.RFC3339),
		Serve: stats.Serve,
		Query: stats.Query,
		OSTs:  stats.OSTs,
	}
	if c.Metrics != nil {
		a.Metrics = c.Metrics.Snapshot()
	}
	if c.Flight != nil {
		a.Slow = c.Flight.Snapshot()
	}
	return a
}

// WriteJSON writes the artifact as indented JSON.
func (a RunArtifact) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// ReadRunArtifact parses an artifact written by WriteJSON.
func ReadRunArtifact(r io.Reader) (RunArtifact, error) {
	var a RunArtifact
	err := json.NewDecoder(r).Decode(&a)
	return a, err
}

// WriteText pretty-prints the artifact: the serve/query counter summary,
// the per-OST load, the metrics snapshot table, and the retained slow
// queries.
func (a RunArtifact) WriteText(w io.Writer) {
	if a.Date != "" {
		fmt.Fprintf(w, "run artifact from %s\n\n", a.Date)
	}
	fmt.Fprintf(w, "producer serve totals: %d metadata, %d box queries, %d data queries, %d bytes served in %d chunks, %d done, %d parked\n",
		a.Serve.MetadataRequests, a.Serve.BoxQueries, a.Serve.DataQueries,
		a.Serve.BytesServed, a.Serve.ChunksServed, a.Serve.DoneMessages, a.Serve.ParkedRequests)
	fmt.Fprintf(w, "consumer query totals: %d metadata, %d box queries, %d data queries, %d bytes fetched in %d chunks, %v blocked waiting\n",
		a.Query.MetadataFetches, a.Query.BoxQueries, a.Query.DataQueries,
		a.Query.BytesFetched, a.Query.ChunksFetched, a.Query.WaitTime.Round(time.Microsecond))
	if a.Query.Retries+a.Query.HedgedCalls+a.Query.Failovers+a.Query.FileFallbacks > 0 {
		fmt.Fprintf(w, "recovery activity: %d retries, %d hedged (%d wins), %d demotions, %d failovers, %d file fallbacks\n",
			a.Query.Retries, a.Query.HedgedCalls, a.Query.HedgeWins,
			a.Query.StragglersDemoted, a.Query.Failovers, a.Query.FileFallbacks)
	}
	if len(a.OSTs) > 0 {
		fmt.Fprintln(w, "\npfs per-OST load:")
		for i, o := range a.OSTs {
			fmt.Fprintf(w, "  OST %2d: %5d requests, %10d bytes, queue wait %8v, busy %8v\n",
				i, o.Requests, o.Bytes, o.QueueWait.Round(time.Microsecond), o.Busy.Round(time.Microsecond))
		}
	}
	if len(a.Metrics) > 0 {
		fmt.Fprintln(w, "\nmetrics snapshot:")
		metrics.WriteTable(w, a.Metrics)
	}
	if len(a.Slow) > 0 {
		fmt.Fprintf(w, "\nslow queries retained: %d\n", len(a.Slow))
		for _, q := range a.Slow {
			fmt.Fprintf(w, "  %s %s/%s dur=%s bytes=%d producers=%v\n",
				q.Time.Format("15:04:05.000"), q.File, q.Dataset,
				q.Duration.Round(time.Microsecond), q.Bytes, q.Producers)
		}
	}
}
