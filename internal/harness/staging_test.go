package harness

import (
	"testing"
)

func TestStagingTrialSweepBitIdentical(t *testing.T) {
	// The staged-log acceptance sweep: leader crash, follower crash, a rank
	// crash torn across its own epoch commit, and GC truncation racing the
	// restarted rank's replay. Every case must deliver the consumers
	// bit-identical data, with recovery going through log replay — the
	// Rejoin + Reindex re-serve path must never fire in staging mode.
	c := QuickConfig()
	cases := DefaultStagingCases()
	results, err := c.StagingSweep(cases)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(cases) {
		t.Fatalf("sweep produced %d results for %d cases", len(results), len(cases))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("case %s: %v", r.Name, r.Err)
			continue
		}
		if !r.Identical {
			t.Errorf("case %s: consumer data differs from the fault-free staging baseline", r.Name)
		}
		if r.Stats.Reindexed != 0 {
			t.Errorf("case %s: %d files took the Rejoin re-serve path", r.Name, r.Stats.Reindexed)
		}
		if cases[i].WantRestarts > 0 {
			if r.Stats.ReplayedFiles == 0 && r.Stats.StageFallbacks == 0 {
				t.Errorf("case %s: restart recovered nothing (no replay, no fallback)", r.Name)
			}
			if len(r.Stats.Failures) == 0 || r.Stats.Failures[0].Task != "producer" {
				t.Errorf("case %s: failures %+v, want the producer task first", r.Name, r.Stats.Failures)
			}
		}
	}
}

func TestStagingBaselineStoreAccounting(t *testing.T) {
	// A fault-free staging run publishes every epoch through the log: three
	// files by two producer ranks, each epoch one begin + chunks + commit,
	// and no failovers, supersessions, truncations or replays.
	c := QuickConfig()
	_, data, stats, ls, err := c.stagingExchange(nil)
	if err != nil {
		t.Fatal(err)
	}
	for r, b := range data {
		if len(b) == 0 {
			t.Fatalf("consumer %d received no data", r)
		}
	}
	if stats.RestartCount != 0 {
		t.Fatalf("fault-free run restarted %d times", stats.RestartCount)
	}
	if ls.Shards != recoveryProducers*recoveryEpochs {
		t.Errorf("shards = %d, want %d (files x producer ranks)", ls.Shards, recoveryProducers*recoveryEpochs)
	}
	if ls.CommittedEpochs != int64(recoveryProducers*recoveryEpochs) {
		t.Errorf("committed epochs = %d, want %d", ls.CommittedEpochs, recoveryProducers*recoveryEpochs)
	}
	if ls.Failovers != 0 || ls.SupersededEpochs != 0 || ls.TruncatedEpochs != 0 || ls.Replays != 0 {
		t.Errorf("fault-free run has recovery activity: %+v", ls)
	}
	if ls.Appends < int64(recoveryProducers*recoveryEpochs*3) {
		t.Errorf("appends = %d, want at least 3 records per epoch per rank", ls.Appends)
	}
}
