package harness

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"lowfive"
	"lowfive/h5"
	"lowfive/internal/buf"
	"lowfive/internal/native"
	"lowfive/internal/pfs"
	"lowfive/internal/rpc"
	"lowfive/mpi"
	"lowfive/workflow"
)

// Recovery trials run an epoch-structured producer–consumer coupling under
// supervised failure policies (workflow.RunSupervised) and seeded chaos
// plans: a producer rank is crashed or hung mid-run, the supervisor detects
// it (crash event or heartbeat expiry), tears the task down, relaunches it
// with fresh communicators, and the restarted incarnation resumes from its
// last completed epoch — rejoining already-published files from the
// checkpoint containers on the simulated PFS. Every case must end with the
// consumers holding data bit-identical to a fault-free run.

// RecoveryCase is one supervised-recovery scenario of a sweep.
type RecoveryCase struct {
	// Name labels the case in reports.
	Name string
	// Plan is the seeded fault plan injected into the world.
	Plan mpi.FaultPlan
	// Policy is the supervision policy the run executes under.
	Policy workflow.Policy
	// WantRestarts is the number of task restarts the plan must force; the
	// sweep reports an error when the observed count differs (a rule that
	// never fired proves nothing).
	WantRestarts int
	// WantHung marks cases whose fault is a hang — detectable only by the
	// heartbeat deadline, never as a crash event.
	WantHung bool
}

// RecoveryResult is the outcome of one recovery case.
type RecoveryResult struct {
	// Name is the case label.
	Name string
	// Seconds is the exchange wall time including detection, backoff,
	// restart and rejoin.
	Seconds float64
	// Identical reports whether every consumer's per-epoch data matched the
	// fault-free baseline bit for bit.
	Identical bool
	// Stats is the supervised run's restart/recovery accounting.
	Stats workflow.RunStats
	// Pool is the trial's chunk-pool snapshot after the run; Outstanding
	// must be back to zero — a torn-down incarnation's in-flight frames are
	// released by the teardown, not leaked.
	Pool buf.PoolStats
	// Err is the first error any rank raised, or a sweep-level assertion
	// failure (expected restarts did not happen).
	Err error
}

// The fixed coupling shape of every recovery trial: two producer ranks
// publish one row-decomposed uint64 grid per epoch, two consumer ranks read
// column slabs of it. Element values encode (epoch, global index), so the
// bit-compare against the baseline is also a value check.
const (
	recoveryProducers = 2
	recoveryConsumers = 2
	recoveryEpochs    = 3
	// recoveryHeartbeat is the hang-detection deadline of the hang case:
	// generous against cost-modeled PFS and network delays (a few ms per
	// op), tiny against the watchdog.
	recoveryHeartbeat = 300 * time.Millisecond
	// recoveryPoolLimit bounds the trial's private chunk pool; small enough
	// that leaked frames from a torn-down incarnation would show up as
	// overflow on the restarted one.
	recoveryPoolLimit = 16
)

var recoveryDims = []int64{24, 16}

// recoveryExchange runs one supervised epoch exchange with the given plan
// (nil for the fault-free baseline) and returns the wall seconds, each
// consumer rank's received bytes (epochs concatenated in order), the run
// stats, and the chunk-pool snapshot.
func (c Config) recoveryExchange(plan *mpi.FaultPlan, pol workflow.Policy) (float64, [][]byte, *workflow.RunStats, buf.PoolStats, error) {
	fs := pfs.New(c.FS)
	rec := &Recorder{}
	var errs errCollector
	data := make([][]byte, recoveryConsumers)
	var mu sync.Mutex
	chunk := c.ChunkBytes
	if chunk == 0 {
		chunk = buf.DefaultChunkBytes
	}
	pool := buf.NewPool(chunk, recoveryPoolLimit)

	// A failed producer rank surfaces as a RankFailedError somewhere in a
	// peer's error chain while the task is torn down; under supervision that
	// is the expected shape of the fault, not a trial error.
	tolerable := func(err error) bool {
		var rf *mpi.RankFailedError
		return errors.As(err, &rf)
	}

	g := workflow.Graph{
		Tasks: []workflow.Task{
			{Name: "producer", Procs: recoveryProducers},
			{Name: "consumer", Procs: recoveryConsumers},
		},
		Edges: []workflow.Edge{{From: "producer", To: "consumer", Pattern: "epoch*.h5"}},
	}
	rows := recoveryDims[0] / recoveryProducers
	cols := recoveryDims[1] / recoveryConsumers
	g.BindEpoch("producer", func(p *mpi.Proc, vol *lowfive.DistMetadataVOL, fapl *h5.FileAccessProps, ctx *workflow.TaskCtx) {
		vol.ChunkPool = pool
		r := int64(p.Task.Rank())
		rec.Start()
		defer rec.Stop()
		for e := ctx.Epoch; e < recoveryEpochs; e++ {
			f, err := h5.CreateFile(fmt.Sprintf("epoch%d.h5", e), fapl)
			if err != nil {
				errs.add(err)
				return
			}
			ds, err := f.CreateDataset("grid", h5.U64, h5.NewSimple(recoveryDims...))
			if err != nil {
				errs.add(err)
				return
			}
			sel := h5.NewSimple(recoveryDims...)
			sel.SelectHyperslab(h5.SelectSet, []int64{r * rows, 0}, []int64{rows, recoveryDims[1]})
			vals := make([]uint64, rows*recoveryDims[1])
			for i := range vals {
				vals[i] = uint64(e)*1_000_000 + uint64(r*rows*recoveryDims[1]) + uint64(i)
			}
			if err := ds.Write(nil, sel, h5.Bytes(vals)); err != nil {
				errs.add(err)
				return
			}
			ds.Close()
			if err := f.Close(); err != nil { // checkpoint + index + serve
				if !tolerable(err) {
					errs.add(err)
				}
				return
			}
			ctx.EpochDone(e)
		}
	})
	g.BindEpoch("consumer", func(p *mpi.Proc, vol *lowfive.DistMetadataVOL, fapl *h5.FileAccessProps, ctx *workflow.TaskCtx) {
		r := p.Task.Rank()
		mu.Lock()
		data[r] = nil // a restarted consumer attempt must not double-append
		mu.Unlock()
		rec.Start()
		defer rec.Stop()
		for e := ctx.Epoch; e < recoveryEpochs; e++ {
			f, err := h5.OpenFile(fmt.Sprintf("epoch%d.h5", e), fapl)
			if err != nil {
				if !tolerable(err) {
					errs.add(err)
				}
				return
			}
			ds, err := f.OpenDataset("grid")
			if err != nil {
				errs.add(err)
				return
			}
			sel := h5.NewSimple(recoveryDims...)
			sel.SelectHyperslab(h5.SelectSet, []int64{0, int64(r) * cols}, []int64{recoveryDims[0], cols})
			out := make([]uint64, recoveryDims[0]*cols)
			if err := ds.Read(nil, sel, h5.Bytes(out)); err != nil {
				if !tolerable(err) {
					errs.add(err)
				}
				return
			}
			ds.Close()
			if err := f.Close(); err != nil {
				if !tolerable(err) {
					errs.add(err)
				}
				return
			}
			mu.Lock()
			data[r] = append(data[r], h5.Bytes(out)...)
			mu.Unlock()
			ctx.EpochDone(e)
		}
	})

	opts := append(c.mpiOpts(), mpi.WithWatchdog(faultWatchdog))
	if plan != nil {
		opts = append(opts, mpi.WithFaultPlan(*plan))
	}
	stats, err := workflow.RunSupervised(g,
		func() h5.Connector { return native.New(native.PFSBackend(fs)) }, pol, opts...)
	if err == nil {
		err = errs.first()
	}
	// Receivers release pooled frames as they drain; give stragglers a
	// moment before snapshotting so Outstanding reflects the settled state.
	for i := 0; i < 200 && pool.Outstanding() > 0; i++ {
		time.Sleep(time.Millisecond)
	}
	return rec.Seconds(), data, stats, pool.Stats(), err
}

// DefaultRecoveryCases is the standard supervised-recovery sweep. Every
// fault rule is Count-bounded: fired counts persist across restarts, so an
// unbounded crash or hang rule would take down every relaunched incarnation
// until the restart budget ran out.
func DefaultRecoveryCases(seed int64) []RecoveryCase {
	restart := workflow.Policy{Mode: workflow.Restart, Backoff: time.Millisecond}
	hang := restart
	hang.Heartbeat = recoveryHeartbeat
	return []RecoveryCase{
		// World rank 0 is producer task rank 0 (tasks are laid out in spec
		// order). After 10 responses it is past the first epoch's serve
		// traffic, so the restart exercises rejoin of completed epochs, not
		// just a from-scratch rerun.
		{Name: "crash-then-restart", WantRestarts: 1, Policy: restart,
			Plan: mpi.FaultPlan{Seed: seed, Rules: []mpi.FaultRule{
				{Action: mpi.FaultCrash, Rank: 0, Tag: rpc.TagResponse, After: 10, Count: 1},
			}}},
		// The hang parks the rank without marking it blocked: no crash event
		// is ever raised, and only the heartbeat deadline can notice the
		// missing progress.
		{Name: "hang-then-timeout", WantRestarts: 1, WantHung: true, Policy: hang,
			Plan: mpi.FaultPlan{Seed: seed, Rules: []mpi.FaultRule{
				{Action: mpi.FaultHang, Rank: 0, Tag: rpc.TagResponse, After: 10, Count: 1},
			}}},
		// Crash recovery under ambient message loss: the consumers' retry
		// budget absorbs the drops while they wait out the restart.
		{Name: "crash-under-loss", WantRestarts: 1, Policy: restart,
			Plan: mpi.FaultPlan{Seed: seed, Rules: []mpi.FaultRule{
				{Action: mpi.FaultCrash, Rank: 0, Tag: rpc.TagResponse, After: 10, Count: 1},
				{Action: mpi.FaultDrop, Rank: mpi.AnyRank, Tag: rpc.TagRequest, Count: 2},
			}}},
	}
}

// RecoverySweep runs the fault-free baseline and then every case, comparing
// each case's consumer data bit for bit against the baseline and checking
// that the plan's faults actually forced the expected restarts.
func (c Config) RecoverySweep(cases []RecoveryCase) ([]RecoveryResult, error) {
	basePol := workflow.Policy{Mode: workflow.Restart, Backoff: time.Millisecond}
	_, baseline, _, _, err := c.recoveryExchange(nil, basePol)
	if err != nil {
		return nil, fmt.Errorf("harness: recovery baseline failed: %w", err)
	}
	for r, b := range baseline {
		if len(b) == 0 {
			return nil, fmt.Errorf("harness: recovery baseline consumer %d received no data", r)
		}
	}
	out := make([]RecoveryResult, 0, len(cases))
	for _, rc := range cases {
		secs, data, stats, ps, err := c.recoveryExchange(&rc.Plan, rc.Policy)
		res := RecoveryResult{Name: rc.Name, Seconds: secs, Pool: ps, Err: err}
		if stats != nil {
			res.Stats = *stats
		}
		if res.Err == nil {
			res.Identical = equalRankData(baseline, data)
			if rc.WantRestarts > 0 && res.Stats.RestartCount != rc.WantRestarts {
				res.Err = fmt.Errorf("harness: %d restarts, want %d (the fault did not bite)",
					res.Stats.RestartCount, rc.WantRestarts)
			} else if rc.WantHung && res.Stats.HungDetected == 0 {
				res.Err = fmt.Errorf("harness: hang was not detected by the heartbeat")
			}
		}
		c.logf("recovery case %-20s identical=%v restarts=%d hung=%d recovered-epochs=%d rejoined=%d err=%v\n",
			rc.Name, res.Identical, res.Stats.RestartCount, res.Stats.HungDetected,
			res.Stats.RecoveredEpochs, res.Stats.Reindexed, res.Err)
		out = append(out, res)
	}
	return out, nil
}

// PrintRecoveryTable renders a recovery sweep as an aligned text table.
func PrintRecoveryTable(w io.Writer, results []RecoveryResult) {
	fmt.Fprintf(w, "Supervised recovery sweep: restart + rejoin vs fault-free baseline\n")
	fmt.Fprintf(w, "%-20s %10s %10s %9s %5s %7s %10s  %s\n",
		"case", "seconds", "identical", "restarts", "hung", "epochs", "reindexed", "error")
	for _, r := range results {
		errStr := ""
		if r.Err != nil {
			errStr = r.Err.Error()
		}
		fmt.Fprintf(w, "%-20s %9.4fs %10v %9d %5d %7d %10d  %s\n",
			r.Name, r.Seconds, r.Identical, r.Stats.RestartCount, r.Stats.HungDetected,
			r.Stats.RecoveredEpochs, r.Stats.Reindexed, errStr)
	}
}
