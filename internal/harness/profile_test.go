package harness

import (
	"bytes"
	"testing"

	"lowfive/internal/workload"
	"lowfive/trace"
)

// TestProfileRecordsAllLayers runs one profiled exchange and checks that
// spans from every instrumented layer — mpi, vol, core and pfs — land in
// the trace, and that the aggregated counters are populated.
func TestProfileRecordsAllLayers(t *testing.T) {
	cfg := QuickConfig()
	spec := workload.PaperSpec(4).Scaled(cfg.ScaleFactor)
	tr := trace.New()
	stats, err := cfg.Profile(tr, spec)
	if err != nil {
		t.Fatal(err)
	}

	cats := map[string]int{}
	procs := map[string]bool{}
	for _, k := range tr.Tracks() {
		procs[k.Process()] = true
		for _, ev := range k.Events() {
			cats[ev.Cat]++
		}
	}
	for _, cat := range []string{"mpi", "vol", "core", "pfs"} {
		if cats[cat] == 0 {
			t.Errorf("no %q spans recorded (got %v)", cat, cats)
		}
	}
	for _, p := range []string{"producer", "consumer", "pfs"} {
		if !procs[p] {
			t.Errorf("no track for process %q (got %v)", p, procs)
		}
	}

	if stats.Serve.BytesServed == 0 || stats.Query.BytesFetched == 0 {
		t.Errorf("serve/query counters empty: %+v / %+v", stats.Serve, stats.Query)
	}
	if stats.Serve.BytesServed != stats.Query.BytesFetched {
		t.Errorf("served %d != fetched %d", stats.Serve.BytesServed, stats.Query.BytesFetched)
	}
	var ostReqs int64
	for _, o := range stats.OSTs {
		ostReqs += o.Requests
	}
	if ostReqs == 0 {
		t.Error("no OST requests recorded despite passthru writes")
	}

	// The exports must work on a real trace: valid Chrome JSON and a
	// summary mentioning each task.
	var js bytes.Buffer
	if err := tr.WriteChrome(&js); err != nil {
		t.Fatal(err)
	}
	var sum bytes.Buffer
	tr.WriteSummaryTable(&sum)
	for _, want := range []string{"producer", "consumer", "pfs"} {
		if !bytes.Contains(sum.Bytes(), []byte(want)) {
			t.Errorf("summary missing %q:\n%s", want, sum.String())
		}
	}
}
