// Package inspect renders the metadata hierarchy of an h5 file (through any
// VOL) as text, with optional per-dataset value statistics — the engine
// behind cmd/lowfive-inspect.
package inspect

import (
	"fmt"
	"io"
	"math"
	"strings"

	"lowfive/h5"
)

// Options control the rendering.
type Options struct {
	// Stats computes min/max/mean for numeric datasets (requires reading
	// the data).
	Stats bool
}

// Dump writes the hierarchy of an open file, ending with a byte-total line
// for the whole container.
func Dump(w io.Writer, f *h5.File, opts Options) error {
	fmt.Fprintf(w, "file %s\n", f.Name())
	var tot totals
	if err := dumpObject(w, &f.Object, 1, opts, &tot); err != nil {
		return err
	}
	fmt.Fprintf(w, "total: %d datasets, %d bytes\n", tot.datasets, tot.bytes)
	return nil
}

// totals accumulates dataset counts and data bytes over the whole hierarchy.
type totals struct {
	datasets int
	bytes    int64
}

func indent(n int) string { return strings.Repeat("  ", n) }

func dumpAttrs(w io.Writer, names []string, read func(string) (*h5.Datatype, []byte, error), depth int) error {
	for _, a := range names {
		dt, data, err := read(a)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s@%s: %s (%d bytes)\n", indent(depth), a, dt, len(data))
	}
	return nil
}

func dumpObject(w io.Writer, obj *h5.Object, depth int, opts Options, tot *totals) error {
	names, err := obj.AttributeNames()
	if err != nil {
		return err
	}
	if err := dumpAttrs(w, names, obj.ReadAttribute, depth); err != nil {
		return err
	}
	kids, err := obj.Children()
	if err != nil {
		return err
	}
	for _, k := range kids {
		switch k.Kind {
		case h5.KindGroup:
			fmt.Fprintf(w, "%sgroup %s\n", indent(depth), k.Name)
			g, err := obj.OpenGroup(k.Name)
			if err != nil {
				return err
			}
			if err := dumpObject(w, &g.Object, depth+1, opts, tot); err != nil {
				return err
			}
		case h5.KindDataset:
			ds, err := obj.OpenDataset(k.Name)
			if err != nil {
				return err
			}
			bytes := ds.Dataspace().NumPoints() * int64(ds.Datatype().Size)
			tot.datasets++
			tot.bytes += bytes
			fmt.Fprintf(w, "%sdataset %s: %s %v (%d bytes)\n", indent(depth), k.Name, ds.Datatype(), ds.Dataspace().Dims(), bytes)
			anames, err := ds.AttributeNames()
			if err != nil {
				return err
			}
			if err := dumpAttrs(w, anames, ds.ReadAttribute, depth+1); err != nil {
				return err
			}
			if opts.Stats {
				if line, ok := statsLine(ds); ok {
					fmt.Fprintf(w, "%s%s\n", indent(depth+1), line)
				}
			}
		}
	}
	return nil
}

// statsLine computes min/max/mean of a numeric dataset via the F64
// conversion path. Non-numeric datasets report no stats.
func statsLine(ds *h5.Dataset) (string, bool) {
	if !h5.Convertible(h5.F64, ds.Datatype()) {
		return "", false
	}
	n := ds.Dataspace().NumPoints()
	if n == 0 {
		return "", false
	}
	buf := make([]float64, n)
	if err := ds.ReadAs(h5.F64, nil, h5.Bytes(buf)); err != nil {
		return "", false
	}
	minV, maxV, sum := math.Inf(1), math.Inf(-1), 0.0
	for _, v := range buf {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
		sum += v
	}
	return fmt.Sprintf("stats: min=%g max=%g mean=%g (%d elements)", minV, maxV, sum/float64(n), n), true
}
