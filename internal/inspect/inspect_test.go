package inspect

import (
	"bytes"
	"strings"
	"testing"

	"lowfive/h5"
	"lowfive/internal/core"
)

func TestDump(t *testing.T) {
	fapl := h5.NewFileAccessProps(core.NewMetadataVOL(nil))
	f, _ := h5.CreateFile("dump.h5", fapl)
	f.WriteAttribute("created", h5.I64, h5.Bytes([]int64{2026}))
	g, _ := f.CreateGroup("fields")
	ds, _ := g.CreateDataset("rho", h5.F32, h5.NewSimple(2, 2))
	ds.Write(nil, nil, h5.Bytes([]float32{1, 2, 3, 4}))
	ds.WriteAttribute("units", h5.NewString(2), []byte("kg"))
	str, _ := g.CreateDataset("names", h5.NewString(4), h5.NewSimple(2))
	str.Write(nil, nil, []byte("ab  cd  "))

	var buf bytes.Buffer
	if err := Dump(&buf, f, Options{Stats: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"file dump.h5",
		"@created: int64",
		"group fields",
		"dataset rho: float32 [2 2]",
		"@units: string[2]",
		"stats: min=1 max=4 mean=2.5 (4 elements)",
		"dataset names: string[4]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// String datasets get no stats line after their entry.
	if strings.Count(out, "stats:") != 1 {
		t.Errorf("expected exactly one stats line:\n%s", out)
	}
}

func TestDumpNoStats(t *testing.T) {
	fapl := h5.NewFileAccessProps(core.NewMetadataVOL(nil))
	f, _ := h5.CreateFile("plain.h5", fapl)
	ds, _ := f.CreateDataset("d", h5.U8, h5.NewSimple(1))
	ds.Write(nil, nil, []byte{1})
	var buf bytes.Buffer
	if err := Dump(&buf, f, Options{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "stats:") {
		t.Error("stats disabled but printed")
	}
}
