package native

import (
	"bytes"
	"testing"

	"lowfive/h5"
	"lowfive/internal/pfs"
)

func newTestConnector() *Connector { return New(PFSBackend(pfs.NewZeroCost())) }

func TestFileRoundTrip(t *testing.T) {
	c := newTestConnector()
	fapl := h5.NewFileAccessProps(c)

	f, err := h5.CreateFile("round.h5", fapl)
	if err != nil {
		t.Fatal(err)
	}
	g, err := f.CreateGroup("group1")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := g.CreateDataset("grid", h5.U64, h5.NewSimple(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]uint64, 16)
	for i := range vals {
		vals[i] = uint64(i) * 3
	}
	if err := ds.Write(nil, nil, h5.Bytes(vals)); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteAttribute("level", h5.I64, h5.Bytes([]int64{2})); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	f2, err := h5.OpenFile("round.h5", fapl)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := f2.OpenGroup("group1")
	if err != nil {
		t.Fatal(err)
	}
	dt, data, err := g2.ReadAttribute("level")
	if err != nil {
		t.Fatal(err)
	}
	if !dt.Equal(h5.I64) || h5.View[int64](data)[0] != 2 {
		t.Errorf("attribute %v %v", dt, data)
	}
	ds2, err := g2.OpenDataset("grid")
	if err != nil {
		t.Fatal(err)
	}
	if !ds2.Datatype().Equal(h5.U64) {
		t.Errorf("type %v", ds2.Datatype())
	}
	out := make([]uint64, 16)
	if err := ds2.Read(nil, nil, h5.Bytes(out)); err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if out[i] != vals[i] {
			t.Errorf("out[%d]=%d want %d", i, out[i], vals[i])
		}
	}
}

func TestPartialWriteReadSelections(t *testing.T) {
	c := newTestConnector()
	fapl := h5.NewFileAccessProps(c)
	f, _ := h5.CreateFile("sel.h5", fapl)
	ds, _ := f.CreateDataset("d", h5.U8, h5.NewSimple(4, 4))
	inner := h5.NewSimple(4, 4)
	inner.SelectHyperslab(h5.SelectSet, []int64{1, 1}, []int64{2, 2})
	if err := ds.Write(nil, inner, []byte{9, 8, 7, 6}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	f2, _ := h5.OpenFile("sel.h5", fapl)
	ds2, _ := f2.OpenDataset("d")
	whole := make([]byte, 16)
	if err := ds2.Read(nil, nil, whole); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 16)
	want[5], want[6], want[9], want[10] = 9, 8, 7, 6
	if !bytes.Equal(whole, want) {
		t.Errorf("whole=%v", whole)
	}
	// Sub-selection read.
	col := h5.NewSimple(4, 4)
	col.SelectHyperslab(h5.SelectSet, []int64{0, 1}, []int64{4, 1})
	out := make([]byte, 4)
	if err := ds2.Read(nil, col, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, []byte{0, 9, 7, 0}) {
		t.Errorf("column=%v", out)
	}
}

func TestCollectiveSharedFileWrites(t *testing.T) {
	// Two "ranks" (connectors on the same FS) create the same file with
	// identical structure and write disjoint halves; both close; the result
	// must contain both halves.
	fs := pfs.NewZeroCost()
	mk := func() *h5.FileAccessProps { return h5.NewFileAccessProps(New(PFSBackend(fs))) }

	write := func(fapl *h5.FileAccessProps, rank int) {
		f, err := h5.CreateFile("shared.h5", fapl)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := f.CreateDataset("d", h5.U8, h5.NewSimple(8))
		if err != nil {
			t.Fatal(err)
		}
		sel := h5.NewSimple(8)
		sel.SelectHyperslab(h5.SelectSet, []int64{int64(rank) * 4}, []int64{4})
		buf := bytes.Repeat([]byte{byte(rank + 1)}, 4)
		if err := ds.Write(nil, sel, buf); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	write(mk(), 0)
	write(mk(), 1)

	f, err := h5.OpenFile("shared.h5", mk())
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := f.OpenDataset("d")
	out := make([]byte, 8)
	ds.Read(nil, nil, out)
	want := []byte{1, 1, 1, 1, 2, 2, 2, 2}
	if !bytes.Equal(out, want) {
		t.Errorf("got %v want %v", out, want)
	}
}

func TestOpenMissingAndCorrupt(t *testing.T) {
	fs := pfs.NewZeroCost()
	c := New(PFSBackend(fs))
	fapl := h5.NewFileAccessProps(c)
	if _, err := h5.OpenFile("missing.h5", fapl); err == nil {
		t.Error("opening a missing file should fail")
	}
	// A file with garbage content must be rejected by magic check.
	st, _ := fs.Create("garbage.h5")
	st.WriteAt([]byte("this is not a container file, definitely not"), 0)
	if _, err := h5.OpenFile("garbage.h5", fapl); err == nil {
		t.Error("garbage file should fail magic check")
	}
}

func TestMultipleDatasetExtentsDoNotOverlap(t *testing.T) {
	c := newTestConnector()
	fapl := h5.NewFileAccessProps(c)
	f, _ := h5.CreateFile("multi.h5", fapl)
	a, _ := f.CreateDataset("a", h5.U8, h5.NewSimple(100))
	b, _ := f.CreateDataset("b", h5.U8, h5.NewSimple(100))
	a.Write(nil, nil, bytes.Repeat([]byte{0xAA}, 100))
	b.Write(nil, nil, bytes.Repeat([]byte{0xBB}, 100))
	f.Close()
	f2, _ := h5.OpenFile("multi.h5", fapl)
	da, _ := f2.OpenDataset("a")
	db, _ := f2.OpenDataset("b")
	bufA := make([]byte, 100)
	bufB := make([]byte, 100)
	da.Read(nil, nil, bufA)
	db.Read(nil, nil, bufB)
	if bufA[50] != 0xAA || bufB[50] != 0xBB {
		t.Errorf("extents overlap: a=%x b=%x", bufA[50], bufB[50])
	}
}

func TestOSBackend(t *testing.T) {
	dir := t.TempDir()
	c := New(OSBackend(dir))
	fapl := h5.NewFileAccessProps(c)
	f, err := h5.CreateFile("real.h5", fapl)
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := f.CreateDataset("d", h5.F64, h5.NewSimple(3))
	ds.Write(nil, nil, h5.Bytes([]float64{1.5, 2.5, 3.5}))
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f2, err := h5.OpenFile("real.h5", fapl)
	if err != nil {
		t.Fatal(err)
	}
	ds2, _ := f2.OpenDataset("d")
	out := make([]float64, 3)
	ds2.Read(nil, nil, h5.Bytes(out))
	if out[2] != 3.5 {
		t.Errorf("got %v", out)
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestUnwrittenRegionsReadZero(t *testing.T) {
	c := newTestConnector()
	fapl := h5.NewFileAccessProps(c)
	f, _ := h5.CreateFile("zeros.h5", fapl)
	ds, _ := f.CreateDataset("d", h5.U64, h5.NewSimple(10))
	sel := h5.NewSimple(10)
	sel.SelectHyperslab(h5.SelectSet, []int64{0}, []int64{1})
	ds.Write(nil, sel, h5.Bytes([]uint64{7}))
	out := make([]uint64, 10)
	if err := ds.Read(nil, nil, h5.Bytes(out)); err != nil {
		t.Fatal(err)
	}
	if out[0] != 7 || out[9] != 0 {
		t.Errorf("got %v", out)
	}
}

func TestConnectorNameAndChildren(t *testing.T) {
	c := newTestConnector()
	if c.ConnectorName() == "" {
		t.Error("connector must be named")
	}
	fapl := h5.NewFileAccessProps(c)
	f, _ := h5.CreateFile("k.h5", fapl)
	f.CreateGroup("g1")
	f.CreateDataset("d1", h5.U8, h5.NewSimple(1))
	kids, err := f.Children()
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 2 || kids[0].Name != "g1" || kids[1].Kind != h5.KindDataset {
		t.Errorf("children %v", kids)
	}
	names, err := f.AttributeNames()
	if err != nil || len(names) != 0 {
		t.Errorf("names=%v err=%v", names, err)
	}
}

func TestDatasetAttributesOnNative(t *testing.T) {
	c := newTestConnector()
	fapl := h5.NewFileAccessProps(c)
	f, _ := h5.CreateFile("da.h5", fapl)
	ds, _ := f.CreateDataset("d", h5.F32, h5.NewSimple(2))
	if err := ds.WriteAttribute("gain", h5.F64, h5.Bytes([]float64{1.25})); err != nil {
		t.Fatal(err)
	}
	names, _ := ds.AttributeNames()
	if len(names) != 1 || names[0] != "gain" {
		t.Errorf("names=%v", names)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Attributes survive the round trip through the container format.
	f2, _ := h5.OpenFile("da.h5", fapl)
	ds2, _ := f2.OpenDataset("d")
	dt, data, err := ds2.ReadAttribute("gain")
	if err != nil || !dt.Equal(h5.F64) || h5.View[float64](data)[0] != 1.25 {
		t.Errorf("dt=%v data=%v err=%v", dt, data, err)
	}
	if _, _, err := ds2.ReadAttribute("missing"); err == nil {
		t.Error("missing dataset attribute should fail")
	}
}

func TestOSFileSize(t *testing.T) {
	dir := t.TempDir()
	be := OSBackend(dir)
	st, err := be.Create("sz.bin")
	if err != nil {
		t.Fatal(err)
	}
	st.WriteAt(make([]byte, 100), 0)
	if n, err := st.Size(); err != nil || n != 100 {
		t.Errorf("size=%d err=%v", n, err)
	}
	st.Close()
	if _, err := be.Open("absent.bin"); err == nil {
		t.Error("opening a missing OS file should fail")
	}
}

func TestDeletePersistsThroughClose(t *testing.T) {
	c := newTestConnector()
	fapl := h5.NewFileAccessProps(c)
	f, _ := h5.CreateFile("del.h5", fapl)
	ds, _ := f.CreateDataset("gone", h5.U8, h5.NewSimple(4))
	ds.Write(nil, nil, []byte{1, 2, 3, 4})
	f.CreateDataset("kept", h5.U8, h5.NewSimple(2))
	if err := f.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	f2, _ := h5.OpenFile("del.h5", fapl)
	if _, err := f2.OpenDataset("gone"); err == nil {
		t.Error("deleted dataset should not be in the reopened file")
	}
	if _, err := f2.OpenDataset("kept"); err != nil {
		t.Errorf("kept dataset missing: %v", err)
	}
}
