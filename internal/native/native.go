// Package native implements the container file format behind the Base VOL:
// an HDF5-stand-in binary layout with a superblock, contiguous dataset
// extents, and a trailing metadata block encoding the full object hierarchy.
//
// The format supports the collective parallel-write pattern the paper's
// file-mode experiments use: every rank opens the same file, dataset
// extents are allocated deterministically from the (collective) creation
// order, each rank writes its own selections with WriteAt, and each rank
// writes the identical metadata block at close — so concurrent closers are
// idempotent, like MPI-IO collective close.
package native

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"lowfive/h5"
	"lowfive/internal/core"
	"lowfive/internal/pfs"
)

// Storage is one open file of a backend.
type Storage interface {
	io.ReaderAt
	io.WriterAt
	Size() (int64, error)
	Close() error
}

// Backend resolves file names to storage, e.g. the simulated parallel file
// system or the local OS file system.
type Backend interface {
	Create(name string) (Storage, error)
	Open(name string) (Storage, error)
}

// PFSBackend adapts the simulated parallel file system.
func PFSBackend(fs *pfs.FS) Backend { return pfsBackend{fs} }

type pfsBackend struct{ fs *pfs.FS }

func (b pfsBackend) Create(name string) (Storage, error) { return b.fs.Create(name) }
func (b pfsBackend) Open(name string) (Storage, error)   { return b.fs.Open(name) }

// OSBackend stores container files as real files under a directory.
func OSBackend(dir string) Backend { return osBackend{dir} }

type osBackend struct{ dir string }

func (b osBackend) path(name string) string { return filepath.Join(b.dir, filepath.Base(name)) }

func (b osBackend) Create(name string) (Storage, error) {
	f, err := os.OpenFile(b.path(name), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (b osBackend) Open(name string) (Storage, error) {
	f, err := os.OpenFile(b.path(name), os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

const (
	magic      = "LF5C"
	version    = 1
	headerSize = 24
	dataStart  = 4096
)

// Connector is the Base VOL: native container-file I/O.
type Connector struct {
	be Backend
}

// New builds a native connector over a backend.
func New(be Backend) *Connector { return &Connector{be: be} }

// ConnectorName implements h5.Connector.
func (c *Connector) ConnectorName() string { return "lowfive-native" }

type file struct {
	st      Storage
	tree    *core.FileNode
	extents map[*core.Node]int64
	alloc   int64
	dirty   bool
}

// FileCreate implements h5.Connector.
func (c *Connector) FileCreate(name string, _ *h5.FileAccessProps) (h5.FileHandle, error) {
	st, err := c.be.Create(name)
	if err != nil {
		return nil, fmt.Errorf("native: create %q: %w", name, err)
	}
	f := &file{st: st, tree: core.NewFileNode(name), extents: map[*core.Node]int64{}, alloc: dataStart, dirty: true}
	return &object{f: f, node: f.tree.Node}, nil
}

// FileOpen implements h5.Connector.
func (c *Connector) FileOpen(name string, _ *h5.FileAccessProps) (h5.FileHandle, error) {
	st, err := c.be.Open(name)
	if err != nil {
		return nil, fmt.Errorf("native: open %q: %w", name, err)
	}
	var hdr [headerSize]byte
	if _, err := st.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("native: %q: reading superblock: %w", name, err)
	}
	if string(hdr[:4]) != magic {
		return nil, fmt.Errorf("native: %q is not a container file (bad magic %q)", name, hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != version {
		return nil, fmt.Errorf("native: %q has unsupported version %d", name, v)
	}
	metaOff := int64(binary.LittleEndian.Uint64(hdr[8:16]))
	metaLen := int64(binary.LittleEndian.Uint64(hdr[16:24]))
	meta := make([]byte, metaLen)
	if _, err := st.ReadAt(meta, metaOff); err != nil {
		return nil, fmt.Errorf("native: %q: reading metadata block: %w", name, err)
	}
	f := &file{st: st, extents: map[*core.Node]int64{}, alloc: metaOff}
	dec := &h5.Decoder{Buf: meta}
	root, err := core.DecodeTree(dec, f.extentExtra())
	if err != nil {
		return nil, fmt.Errorf("native: %q: corrupt metadata: %w", name, err)
	}
	f.tree = &core.FileNode{Node: root, FileName: name}
	return &object{f: f, node: root}, nil
}

// extentExtra encodes/decodes the per-dataset extent offset.
func (f *file) extentExtra() *core.NodeExtra {
	return &core.NodeExtra{
		Encode: func(e *h5.Encoder, n *core.Node) {
			if n.Kind == h5.KindDataset {
				e.PutI64(f.extents[n])
			}
		},
		Decode: func(d *h5.Decoder, n *core.Node) {
			if n.Kind == h5.KindDataset {
				f.extents[n] = d.I64()
			}
		},
	}
}

func (f *file) writeMetadata() error {
	var e h5.Encoder
	core.EncodeTree(&e, f.tree.Node, f.extentExtra())
	if _, err := f.st.WriteAt(e.Buf, f.alloc); err != nil {
		return fmt.Errorf("native: writing metadata block: %w", err)
	}
	var hdr [headerSize]byte
	copy(hdr[:4], magic)
	binary.LittleEndian.PutUint32(hdr[4:8], version)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(f.alloc))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(e.Buf)))
	if _, err := f.st.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("native: writing superblock: %w", err)
	}
	return nil
}

// object is a handle to the file root or a group.
type object struct {
	f    *file
	node *core.Node
}

func (o *object) GroupCreate(name string) (h5.ObjectHandle, error) {
	g := core.NewGroupNode(name)
	if err := o.node.AddChild(g); err != nil {
		return nil, err
	}
	o.f.dirty = true
	return &object{f: o.f, node: g}, nil
}

func (o *object) GroupOpen(name string) (h5.ObjectHandle, error) {
	g, ok := o.node.Child(name)
	if !ok || g.Kind != h5.KindGroup {
		return nil, fmt.Errorf("native: group %q not found under %q", name, o.node.Path())
	}
	return &object{f: o.f, node: g}, nil
}

func (o *object) DatasetCreate(name string, dt *h5.Datatype, space *h5.Dataspace) (h5.DatasetHandle, error) {
	// The contiguous layout reserves the maximum extent up front, so the
	// dataset can later be extended in place; unbounded dims cannot be
	// stored contiguously (real HDF5 requires chunked layout there too).
	size := int64(dt.Size)
	for _, m := range space.MaxDims() {
		if m == h5.Unlimited {
			return nil, fmt.Errorf("native: dataset %q has an unlimited dimension; the contiguous container layout requires bounded max dims", name)
		}
		size *= m
	}
	n := core.NewDatasetNode(name, dt, space.Clone())
	if err := o.node.AddChild(n); err != nil {
		return nil, err
	}
	o.f.extents[n] = o.f.alloc
	o.f.alloc += (size + 7) &^ 7 // 8-byte alignment
	o.f.dirty = true
	return &dataset{f: o.f, node: n}, nil
}

func (o *object) DatasetOpen(name string) (h5.DatasetHandle, error) {
	n, ok := o.node.Child(name)
	if !ok || n.Kind != h5.KindDataset {
		return nil, fmt.Errorf("native: dataset %q not found under %q", name, o.node.Path())
	}
	return &dataset{f: o.f, node: n}, nil
}

func (o *object) Children() ([]h5.ObjectInfo, error) {
	var out []h5.ObjectInfo
	for _, c := range o.node.Children() {
		out = append(out, h5.ObjectInfo{Name: c.Name, Kind: c.Kind})
	}
	return out, nil
}

// Delete unlinks a child from the metadata tree. Like HDF5, the space the
// deleted dataset occupied in the container file is not reclaimed (no
// h5repack here); it simply becomes unreachable.
func (o *object) Delete(name string) error {
	if err := o.node.RemoveChild(name); err != nil {
		return err
	}
	o.f.dirty = true
	return nil
}

func (o *object) AttributeWrite(name string, dt *h5.Datatype, space *h5.Dataspace, data []byte) error {
	// The tree retains the attribute until the metadata flush; the caller
	// keeps ownership of data (VOL contract), so copy here.
	o.node.SetAttribute(&core.Attribute{Name: name, Type: dt, Space: space, Data: append([]byte(nil), data...)})
	o.f.dirty = true
	return nil
}

func (o *object) AttributeRead(name string) (*h5.Datatype, *h5.Dataspace, []byte, error) {
	a, ok := o.node.Attribute(name)
	if !ok {
		return nil, nil, nil, fmt.Errorf("native: attribute %q not found on %q", name, o.node.Path())
	}
	return a.Type, a.Space, a.Data, nil
}

func (o *object) AttributeNames() ([]string, error) { return o.node.AttributeNames(), nil }

// Close flushes metadata if this handle is the file root and the tree
// changed; group handles close without I/O.
func (o *object) Close() error {
	if o.node.Parent != nil {
		return nil // plain group
	}
	if o.f.dirty {
		if err := o.f.writeMetadata(); err != nil {
			return err
		}
		o.f.dirty = false
	}
	return o.f.st.Close()
}

// dataset is a handle to one dataset's extent.
type dataset struct {
	f    *file
	node *core.Node
}

func (d *dataset) Datatype() *h5.Datatype   { return d.node.Type }
func (d *dataset) Dataspace() *h5.Dataspace { return d.node.Space.Clone().SelectAll() }

// runLayout converts a file-space selection into byte offsets/lengths
// within the dataset's extent. The on-disk layout is row-major over the
// MAXIMUM dims, so extending the dataset never relocates existing data.
func (d *dataset) runLayout(fileSpace *h5.Dataspace) (offs, lens []int64) {
	es := int64(d.node.Type.Size)
	base := d.f.extents[d.node]
	layout := d.node.Space.MaxDims()
	for _, b := range fileSpace.SelectionBoxes() {
		b.Runs(layout, func(off, n int64) {
			offs = append(offs, base+off*es)
			lens = append(lens, n*es)
		})
	}
	return offs, lens
}

// RunStorage is implemented by backends supporting vectored transfers with
// aggregate cost accounting (MPI-IO collective style); the simulated
// parallel file system does.
type RunStorage interface {
	WriteRuns(packed []byte, offs, lens []int64) error
	ReadRuns(dst []byte, offs, lens []int64) error
}

// Write packs the memSpace-selected elements and writes the file-space
// runs at their extent offsets — as one vectored request when the backend
// supports it.
func (d *dataset) Write(memSpace, fileSpace *h5.Dataspace, data []byte) error {
	es := int64(d.node.Type.Size)
	if fileSpace == nil {
		fileSpace = d.node.Space.Clone().SelectAll()
	}
	var packed []byte
	if memSpace == nil {
		packed = data
	} else {
		packed = h5.GatherSelected(make([]byte, 0, fileSpace.NumSelected()*es), data, memSpace, int(es))
	}
	offs, lens := d.runLayout(fileSpace)
	if rs, ok := d.f.st.(RunStorage); ok {
		return rs.WriteRuns(packed, offs, lens)
	}
	pos := int64(0)
	for i := range offs {
		if _, err := d.f.st.WriteAt(packed[pos:pos+lens[i]], offs[i]); err != nil {
			return err
		}
		pos += lens[i]
	}
	return nil
}

// Read fetches the file-space runs — as one vectored request when the
// backend supports it — and scatters into the memSpace-selected elements
// of data.
func (d *dataset) Read(memSpace, fileSpace *h5.Dataspace, data []byte) error {
	es := int64(d.node.Type.Size)
	if fileSpace == nil {
		fileSpace = d.node.Space.Clone().SelectAll()
	}
	packed := make([]byte, fileSpace.NumSelected()*es)
	offs, lens := d.runLayout(fileSpace)
	if rs, ok := d.f.st.(RunStorage); ok {
		if err := rs.ReadRuns(packed, offs, lens); err != nil {
			return err
		}
	} else {
		pos := int64(0)
		for i := range offs {
			if _, err := d.f.st.ReadAt(packed[pos:pos+lens[i]], offs[i]); err != nil {
				return err
			}
			pos += lens[i]
		}
	}
	if memSpace == nil {
		copy(data, packed)
		return nil
	}
	h5.ScatterSelected(data, memSpace, packed, int(es))
	return nil
}

// SetExtent changes the current extent within the reserved maximum. The
// on-disk layout is fixed over the maximum dims, so extending never moves
// data already written.
func (d *dataset) SetExtent(dims []int64) error {
	if err := d.node.Space.SetExtent(dims); err != nil {
		return err
	}
	d.f.dirty = true
	return nil
}

func (d *dataset) AttributeWrite(name string, dt *h5.Datatype, space *h5.Dataspace, data []byte) error {
	// Copy at the retention point: the caller keeps ownership of data.
	d.node.SetAttribute(&core.Attribute{Name: name, Type: dt, Space: space, Data: append([]byte(nil), data...)})
	d.f.dirty = true
	return nil
}

func (d *dataset) AttributeRead(name string) (*h5.Datatype, *h5.Dataspace, []byte, error) {
	a, ok := d.node.Attribute(name)
	if !ok {
		return nil, nil, nil, fmt.Errorf("native: attribute %q not found on %q", name, d.node.Path())
	}
	return a.Type, a.Space, a.Data, nil
}

func (d *dataset) AttributeNames() ([]string, error) { return d.node.AttributeNames(), nil }

func (d *dataset) Close() error { return nil }
