package spin

import (
	"testing"
	"time"
)

func TestWaitShortIsAccurate(t *testing.T) {
	for _, d := range []time.Duration{10 * time.Microsecond, 100 * time.Microsecond, 500 * time.Microsecond} {
		start := time.Now()
		for i := 0; i < 20; i++ {
			Wait(d)
		}
		avg := time.Since(start) / 20
		if avg < d || avg > 10*d+200*time.Microsecond {
			t.Errorf("Wait(%v) averaged %v", d, avg)
		}
	}
}

func TestWaitZeroAndNegative(t *testing.T) {
	start := time.Now()
	Wait(0)
	Wait(-time.Second)
	if time.Since(start) > 10*time.Millisecond {
		t.Error("zero/negative waits should return immediately")
	}
}

func TestWaitLongUsesSleep(t *testing.T) {
	start := time.Now()
	Wait(5 * time.Millisecond)
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Errorf("waited only %v", d)
	}
}
