// Package spin provides a sub-millisecond delay primitive for the cost
// models. time.Sleep on many Linux kernels has ~1ms timer slack, which
// would make a microsecond-scale latency model off by three orders of
// magnitude; short delays therefore busy-wait on the monotonic clock,
// yielding to the scheduler so other goroutine ranks keep progressing.
package spin

import (
	"runtime"
	"time"
)

// sleepThreshold is the duration above which time.Sleep is accurate enough.
const sleepThreshold = 2 * time.Millisecond

// Wait delays the calling goroutine for approximately d.
func Wait(d time.Duration) {
	if d <= 0 {
		return
	}
	if d >= sleepThreshold {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}
